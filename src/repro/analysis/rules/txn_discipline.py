"""Rule ``txn-discipline``: trusted-flow mutations run inside a transaction.

One SeGShare request mutates many untrusted keys; a crash between two of
them leaves storage inconsistent with the rollback-guard anchors, which
is indistinguishable from a rollback attack (``repro.core.journal``
docstring, PR 1).  Since the storage-engine refactor all of that
choreography — journal batch, guard-batch accumulation, deferred ocall
flush, cache write-through on commit / discard on abort — lives behind
one span: ``StorageEngine.transaction()``.  The discipline is therefore:
every file-manager mutation reachable from a request entry point happens
inside a ``manager.transaction(...)`` span.  (This rule subsumes the old
``cache-discard`` rule: cache coherence is now enforced by construction
inside the engine facade, so only the transaction bracketing is left to
lint.)

The check is interprocedural over the modules the boundary map puts in
scope (the request handler, access control, and rotation replay).
Exposure propagates from entry points: a function with no observed call
sites is *exposed* (unless it is a declared transaction wrapper such as
``RequestHandler.handle``, which brackets every mutating opcode before
dispatching), and exposure flows along call edges that are not inside a
lexical ``with *.transaction(...)`` block and do not originate in a
wrapper.  A function is a violation if it is exposed and calls a mutator
(``write_dir``, ``write_acl``, …) outside a transaction block.
Propagating exposure (a least fixpoint from entry points) rather than
"covered-ness" keeps recursion and delegate cycles —
``RequestHandler.set_permission`` calling
``AccessControl.set_permission``, which shares its bare name — from
wedging the analysis.  Call edges resolve by bare method name, which is
deliberately coarse for a codebase this size.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Iterator

from repro.analysis.boundary import BoundaryMap
from repro.analysis.engine import Finding, SourceModule
from repro.analysis.rules.base import call_name, iter_functions

RULE = "txn-discipline"

_DEFAULT_MODULES = (
    "repro.core.request_handler",
    "repro.core.access_control",
    "repro.core.rotation",
)
_DEFAULT_MUTATORS = (
    "write_dir",
    "write_acl",
    "write_content",
    "delete_content",
    "delete_acl",
    "write_member_list",
    "write_group_list",
    "write_quota",
)


class _FuncInfo:
    __slots__ = ("key", "name", "mutators_outside", "calls")

    def __init__(self, key: tuple[str, str], name: str) -> None:
        self.key = key
        self.name = name
        #: (line, mutator name) for mutator calls outside any with-transaction.
        self.mutators_outside: list[tuple[int, str]] = []
        #: (callee bare name, inside_txn) for every call in the body.
        self.calls: list[tuple[str, bool]] = []


def _is_txn_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and call_name(expr) == "transaction":
            return True
    return False


def _scan(fn: ast.AST, info: _FuncInfo, mutators: frozenset[str], in_txn: bool) -> None:
    for child in ast.iter_child_nodes(fn):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested definitions are scanned as their own functions
        child_in_txn = in_txn
        if isinstance(child, ast.With) and _is_txn_with(child):
            child_in_txn = True
        if isinstance(child, ast.Call):
            name = call_name(child)
            if name is not None:
                info.calls.append((name, in_txn))
                if name in mutators and not in_txn:
                    info.mutators_outside.append((child.lineno, name))
        _scan(child, info, mutators, child_in_txn)


def check(modules: list[SourceModule], boundary: BoundaryMap) -> Iterator[Finding]:
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    mutators = frozenset(cfg.get("mutators", _DEFAULT_MUTATORS))
    wrappers = frozenset(cfg.get("txn_wrappers", ()))
    exempt = frozenset(cfg.get("exempt", ()))

    import fnmatch

    funcs: dict[tuple[str, str], _FuncInfo] = {}
    positions: dict[tuple[str, str], tuple[SourceModule, str]] = {}
    for module in modules:
        if not any(
            module.name == p or fnmatch.fnmatchcase(module.name, p) for p in scope
        ):
            continue
        for qualname, fn in iter_functions(module.tree):
            key = (module.name, qualname)
            info = _FuncInfo(key, fn.name)
            _scan(fn, info, mutators, in_txn=False)
            funcs[key] = info
            positions[key] = (module, qualname)

    # Call sites per bare callee name.
    sites: dict[str, list[tuple[tuple[str, str], bool]]] = defaultdict(list)
    for info in funcs.values():
        for callee, in_txn in info.calls:
            sites[callee].append((info.key, in_txn))

    # Least fixpoint on *exposure*: seed with entry points (no observed
    # call sites, not a wrapper), then flow along call edges that are
    # neither lexically inside a transaction nor made from a wrapper
    # body.  Cycles — recursion, or a delegate sharing its caller's bare
    # name — stay unexposed unless something genuinely exposed reaches
    # them.
    exposed: set[tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for info in funcs.values():
            if info.key in exposed:
                continue
            call_sites = sites.get(info.name, [])
            if not call_sites:
                if info.name not in wrappers:
                    exposed.add(info.key)
                    changed = True
                continue
            if any(
                not in_txn
                and caller in exposed
                and funcs[caller].name not in wrappers
                for caller, in_txn in call_sites
            ):
                exposed.add(info.key)
                changed = True

    for info in funcs.values():
        if not info.mutators_outside or info.key not in exposed:
            continue
        if info.name in exempt or f"{info.key[0]}:{positions[info.key][1]}" in exempt:
            continue
        module, qualname = positions[info.key]
        line, mutator = info.mutators_outside[0]
        yield Finding(
            rule=RULE,
            path=module.rel_path,
            line=line,
            symbol=f"{module.name}:{qualname}",
            message=(
                f"{mutator}() runs outside any storage transaction and no "
                f"caller establishes one; wrap the mutation in "
                f"manager.transaction(...) or baseline it with a justification"
            ),
        )

"""Rule ``txn-discipline``: trusted-flow mutations run inside a transaction.

One SeGShare request mutates many untrusted keys; a crash between two of
them leaves storage inconsistent with the rollback-guard anchors, which
is indistinguishable from a rollback attack (``repro.core.journal``
docstring, PR 1).  Since the storage-engine refactor all of that
choreography — journal batch, guard-batch accumulation, deferred ocall
flush, cache write-through on commit / discard on abort — lives behind
one span: ``StorageEngine.transaction()``.  The discipline is therefore:
every file-manager mutation reachable from a request entry point happens
inside a ``manager.transaction(...)`` span.  (This rule subsumes the old
``cache-discard`` rule: cache coherence is now enforced by construction
inside the engine facade, so only the transaction bracketing is left to
lint.)

The check is interprocedural over the modules the boundary map puts in
scope (the request handler, access control, and rotation replay), built
on the shared call graph (:mod:`repro.analysis.callgraph`): a call site
is *protected* when one of its enclosing ``with`` spans is a
``*.transaction(...)`` call, and exposure is the graph's shared entry-
point fixpoint.  Call edges resolve by bare method name — deliberately
coarse, so recursion and delegate cycles (``RequestHandler.set_permission``
calling ``AccessControl.set_permission``) stay unexposed unless
something genuinely exposed reaches them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import segments

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RULE = "txn-discipline"

_DEFAULT_MODULES = (
    "repro.core.request_handler",
    "repro.core.access_control",
    "repro.core.rotation",
)
_DEFAULT_MUTATORS = (
    "write_dir",
    "write_acl",
    "write_content",
    "delete_content",
    "delete_acl",
    "write_member_list",
    "write_group_list",
    "write_quota",
)


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    from repro.analysis.callgraph import CallSite, exposure

    boundary = ctx.boundary
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    mutators = frozenset(cfg.get("mutators", _DEFAULT_MUTATORS))
    wrappers = frozenset(cfg.get("txn_wrappers", ()))
    exempt = frozenset(cfg.get("exempt", ()))

    def protected(site: CallSite) -> bool:
        return any(span.method == "transaction" for span in site.spans)

    funcs = ctx.graph.functions_in(scope)
    exposed = exposure(funcs, protected, wrappers)

    for info in funcs.values():
        if info.key not in exposed:
            continue
        outside = [
            site
            for site in info.calls
            if site.name in mutators and not protected(site)
        ]
        if not outside:
            continue
        if info.name in exempt or f"{info.key[0]}:{info.qualname}" in exempt:
            continue
        site = outside[0]
        yield Finding(
            rule=RULE,
            path=info.module.rel_path,
            line=site.line,
            symbol=f"{info.key[0]}:{info.qualname}",
            message=(
                f"{site.name}() runs outside any storage transaction and no "
                f"caller establishes one; wrap the mutation in "
                f"manager.transaction(...) or baseline it with a justification"
            ),
        )


# -- coherence-discipline ------------------------------------------------------
#
# The cross-replica invalidation protocol (repro.core.coherence) adds two
# obligations the transaction span alone does not express:
#
# * **publish-at-commit** — an entry on the shared coherence log tells
#   peers to drop cached values because durable state changed.  A publish
#   that does not strictly follow the journal's commit record could
#   describe a batch that subsequently rolls back (peers discard for
#   nothing — a correctness-preserving perf bug) or, worse, race a crash
#   so the log and the store disagree about what committed.  The engine
#   funnels every publish through one owner helper; this check verifies
#   each call site of that helper (and any direct publish on a coherence
#   receiver) is preceded, in the same function, by a journal
#   commit/commit_member/close_epoch call.
# * **sync-before-serve** — the cache facade's serve paths must apply
#   peer epochs before reading, or a replica serves plaintext a peer
#   already invalidated.  The check is line-order within the configured
#   serve functions: a cache get/contains with no earlier coherence
#   sync() is flagged.
#
# Both checks are intentionally intraprocedural: the protocol is a local
# choreography (commit, then publish; sync, then read), and the owner
# funnel plus the txn-discipline exposure rule already cover the
# interprocedural half.  The recovery-path reset is exempted by name in
# boundary.toml with its rationale.

COHERENCE_RULE = "coherence-discipline"

_DEFAULT_COHERENCE_MODULES = ("repro.store.engine", "repro.core.enclave_app")
_DEFAULT_PUBLISH_CALLS = ("publish", "publish_reset")
_DEFAULT_PUBLISH_RECEIVERS = ("coherence",)
_DEFAULT_PUBLISH_OWNERS = ("_publish_coherence",)
_DEFAULT_COMMIT_CALLS = ("commit", "commit_member", "close_epoch")
_DEFAULT_COMMIT_RECEIVERS = ("journal",)
_DEFAULT_SERVE_FUNCTIONS = ("lookup", "cached")
_DEFAULT_CACHE_CALLS = ("get", "contains")
_DEFAULT_CACHE_RECEIVERS = ("cache",)
_DEFAULT_SYNC_CALLS = ("sync",)


def _receiver_matches(receiver: str | None, names: frozenset[str]) -> bool:
    if receiver is None:
        return False
    return any(part in names for part in segments(receiver))


def check_coherence(ctx: "AnalysisContext") -> Iterator[Finding]:
    boundary = ctx.boundary
    cfg = boundary.rule(COHERENCE_RULE)
    scope = boundary.rule_modules(COHERENCE_RULE, _DEFAULT_COHERENCE_MODULES)
    publish_calls = frozenset(cfg.get("publish_calls", _DEFAULT_PUBLISH_CALLS))
    publish_receivers = frozenset(
        cfg.get("publish_receivers", _DEFAULT_PUBLISH_RECEIVERS)
    )
    owners = frozenset(cfg.get("publish_owners", _DEFAULT_PUBLISH_OWNERS))
    commit_calls = frozenset(cfg.get("commit_calls", _DEFAULT_COMMIT_CALLS))
    commit_receivers = frozenset(
        cfg.get("commit_receivers", _DEFAULT_COMMIT_RECEIVERS)
    )
    serve_functions = frozenset(
        cfg.get("serve_functions", _DEFAULT_SERVE_FUNCTIONS)
    )
    cache_calls = frozenset(cfg.get("cache_calls", _DEFAULT_CACHE_CALLS))
    cache_receivers = frozenset(
        cfg.get("cache_receivers", _DEFAULT_CACHE_RECEIVERS)
    )
    sync_calls = frozenset(cfg.get("sync_calls", _DEFAULT_SYNC_CALLS))
    exempt = frozenset(cfg.get("exempt", ()))

    for info in ctx.graph.functions_in(scope).values():
        if info.name in exempt or f"{info.key[0]}:{info.qualname}" in exempt:
            continue

        # -- publish-at-commit -----------------------------------------------
        if info.name not in owners:
            # Inside an owner the publish is the implementation; the
            # obligation moves to the owner's call sites below.
            commit_lines = [
                site.line
                for site in info.calls
                if site.name in commit_calls
                and _receiver_matches(site.receiver, commit_receivers)
            ]
            for site in info.calls:
                direct = site.name in publish_calls and _receiver_matches(
                    site.receiver, publish_receivers
                )
                if not direct and site.name not in owners:
                    continue
                if any(line < site.line for line in commit_lines):
                    continue
                yield Finding(
                    rule=COHERENCE_RULE,
                    path=info.module.rel_path,
                    line=site.line,
                    symbol=f"{info.key[0]}:{info.qualname}",
                    message=(
                        f"{site.name}() publishes to the coherence log with no "
                        f"preceding journal commit in this function; "
                        f"invalidation entries must describe only durable "
                        f"state — publish after "
                        f"{'/'.join(sorted(commit_calls))}, or exempt the "
                        f"function with a justification"
                    ),
                )

        # -- sync-before-serve -------------------------------------------------
        if info.name not in serve_functions:
            continue
        sync_lines = [
            site.line
            for site in info.calls
            if site.name in sync_calls
            and _receiver_matches(site.receiver, publish_receivers)
        ]
        for site in info.calls:
            if site.name not in cache_calls or not _receiver_matches(
                site.receiver, cache_receivers
            ):
                continue
            if any(line < site.line for line in sync_lines):
                continue
            yield Finding(
                rule=COHERENCE_RULE,
                path=info.module.rel_path,
                line=site.line,
                symbol=f"{info.key[0]}:{info.qualname}",
                message=(
                    f"{site.name}() serves from the cache before any "
                    f"coherence sync() in this serve path; a replica must "
                    f"apply peer epochs before reading or it serves values "
                    f"a peer already invalidated"
                ),
            )

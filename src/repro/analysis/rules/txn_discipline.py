"""Rule ``txn-discipline``: trusted-flow mutations run inside a transaction.

One SeGShare request mutates many untrusted keys; a crash between two of
them leaves storage inconsistent with the rollback-guard anchors, which
is indistinguishable from a rollback attack (``repro.core.journal``
docstring, PR 1).  Since the storage-engine refactor all of that
choreography — journal batch, guard-batch accumulation, deferred ocall
flush, cache write-through on commit / discard on abort — lives behind
one span: ``StorageEngine.transaction()``.  The discipline is therefore:
every file-manager mutation reachable from a request entry point happens
inside a ``manager.transaction(...)`` span.  (This rule subsumes the old
``cache-discard`` rule: cache coherence is now enforced by construction
inside the engine facade, so only the transaction bracketing is left to
lint.)

The check is interprocedural over the modules the boundary map puts in
scope (the request handler, access control, and rotation replay), built
on the shared call graph (:mod:`repro.analysis.callgraph`): a call site
is *protected* when one of its enclosing ``with`` spans is a
``*.transaction(...)`` call, and exposure is the graph's shared entry-
point fixpoint.  Call edges resolve by bare method name — deliberately
coarse, so recursion and delegate cycles (``RequestHandler.set_permission``
calling ``AccessControl.set_permission``) stay unexposed unless
something genuinely exposed reaches them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RULE = "txn-discipline"

_DEFAULT_MODULES = (
    "repro.core.request_handler",
    "repro.core.access_control",
    "repro.core.rotation",
)
_DEFAULT_MUTATORS = (
    "write_dir",
    "write_acl",
    "write_content",
    "delete_content",
    "delete_acl",
    "write_member_list",
    "write_group_list",
    "write_quota",
)


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    from repro.analysis.callgraph import CallSite, exposure

    boundary = ctx.boundary
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    mutators = frozenset(cfg.get("mutators", _DEFAULT_MUTATORS))
    wrappers = frozenset(cfg.get("txn_wrappers", ()))
    exempt = frozenset(cfg.get("exempt", ()))

    def protected(site: CallSite) -> bool:
        return any(span.method == "transaction" for span in site.spans)

    funcs = ctx.graph.functions_in(scope)
    exposed = exposure(funcs, protected, wrappers)

    for info in funcs.values():
        if info.key not in exposed:
            continue
        outside = [
            site
            for site in info.calls
            if site.name in mutators and not protected(site)
        ]
        if not outside:
            continue
        if info.name in exempt or f"{info.key[0]}:{info.qualname}" in exempt:
            continue
        site = outside[0]
        yield Finding(
            rule=RULE,
            path=info.module.rel_path,
            line=site.line,
            symbol=f"{info.key[0]}:{info.qualname}",
            message=(
                f"{site.name}() runs outside any storage transaction and no "
                f"caller establishes one; wrap the mutation in "
                f"manager.transaction(...) or baseline it with a justification"
            ),
        )

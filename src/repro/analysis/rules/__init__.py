"""The seglint rule registry.

Each rule module exposes ``RULE`` (its id) and
``check(ctx) -> Iterator[Finding]``, where ``ctx`` is an
:class:`repro.analysis.engine.AnalysisContext` carrying the module list,
the boundary map, and the shared interprocedural call graph
(``ctx.graph``, built lazily by the engine and shared by every rule that
asks for it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules import (
    boundary_import,
    crashpoint_coverage,
    epoch_typestate,
    lock_discipline,
    lock_order,
    nonct_compare,
    plaintext_escape,
    txn_discipline,
)

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RuleFn = Callable[["AnalysisContext"], Iterator[Finding]]

REGISTRY: dict[str, RuleFn] = {
    plaintext_escape.RULE: plaintext_escape.check,
    boundary_import.RULE: boundary_import.check,
    nonct_compare.RULE: nonct_compare.check,
    txn_discipline.RULE: txn_discipline.check,
    txn_discipline.COHERENCE_RULE: txn_discipline.check_coherence,
    lock_discipline.RULE: lock_discipline.check,
    lock_order.RULE: lock_order.check,
    epoch_typestate.RULE: epoch_typestate.check,
    crashpoint_coverage.RULE: crashpoint_coverage.check,
}

__all__ = ["REGISTRY", "RuleFn"]

"""The seglint rule registry.

Each rule module exposes ``RULE`` (its id) and
``check(modules, boundary) -> Iterator[Finding]``.  Rules receive the
whole module list because some checks are interprocedural across
modules (``txn-discipline``) or need the global classification
(``boundary-import``).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.analysis.boundary import BoundaryMap
from repro.analysis.engine import Finding, SourceModule
from repro.analysis.rules import (
    boundary_import,
    lock_discipline,
    nonct_compare,
    plaintext_escape,
    txn_discipline,
)

RuleFn = Callable[[list[SourceModule], BoundaryMap], Iterator[Finding]]

REGISTRY: dict[str, RuleFn] = {
    plaintext_escape.RULE: plaintext_escape.check,
    boundary_import.RULE: boundary_import.check,
    nonct_compare.RULE: nonct_compare.check,
    txn_discipline.RULE: txn_discipline.check,
    lock_discipline.RULE: lock_discipline.check,
}

__all__ = ["REGISTRY", "RuleFn"]

"""Rule ``crashpoint-coverage``: crash testing covers the mutation surface.

The crash-matrix suites (PR 1/5/6/7) work by sweeping
``FaultPlan.crash_at_point(nth, site_prefix)`` over the crashpoints a
workload passes, so their guarantee is exactly as strong as the
crashpoint placement: a persisted-mutation site with no crashpoint is a
crash window no matrix will ever schedule, and a declared crashpoint no
test names is dead assurance — it looks covered in the source while
nothing exercises it.  This rule proves the coverage bidirectionally:

* **declared -> exercised**: every crashpoint ID declared in the scoped
  source modules (under the configured prefixes — ``journal:``,
  ``anchor:``, ``diskstore:``, ``cluster:``) must be matched by a string
  literal in the crash-test tree (``test_paths``, resolved relative to
  the boundary file).  Test literals act as prefixes, mirroring
  ``crash_at_point`` semantics: a test naming ``journal:`` exercises
  every ``journal:*`` site.
* **mutating -> declared**: every function in the configured mutation
  modules that performs a persisted mutation (a bare configured call
  such as ``raw_write``, an ``os``-module call such as ``os.replace``,
  or a ``put``/``delete`` through a backend-shaped receiver) must
  contain a crashpoint call, so the matrix can schedule a crash against
  it.

Recovery-path mutations that must *not* carry crashpoints (a crashpoint
inside restore would let the fault plan kill the recovering — or in the
cluster, the succeeding — enclave, which the single-crash matrices by
design never do) are baselined with that rationale rather than
suppressed inline.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import call_name, segments

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo
    from repro.analysis.engine import AnalysisContext

RULE = "crashpoint-coverage"

_DEFAULT_PREFIXES = ("journal:", "anchor:", "diskstore:", "cluster:")
_DEFAULT_CRASHPOINT_CALLS = ("crashpoint", "_crashpoint", "crash_hook")
_DEFAULT_MUTATION_CALLS = (
    "raw_write",
    "raw_delete",
    "raw_group_write",
)
#: ``replace``/``remove``/``unlink`` are persisted mutations only as
#: ``os``-module calls; the same bare names on sets and dicts are not.
_DEFAULT_OS_CALLS = ("replace", "remove", "unlink")
_DEFAULT_OS_RECEIVERS = ("os",)
#: ``put``/``delete``/``rename`` only count as persisted mutations when
#: they go through a raw-backend-shaped receiver; the same names on
#: caches and wrappers are not persistence.
_DEFAULT_STORE_CALLS = ("put", "delete", "rename")
_DEFAULT_STORE_RECEIVERS = ("backend", "backends", "store", "stores", "inner")


def _literal_prefix(node: ast.expr) -> str | None:
    """The string literal (or f-string literal head) of a crashpoint arg."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _test_literals(paths: list[Path], prefixes: tuple[str, ...]) -> set[str]:
    literals: set[str] = set()
    for root in paths:
        if root.is_file():
            files = [root]
        elif root.is_dir():
            files = sorted(root.rglob("*.py"))
        else:
            continue
        for file_path in files:
            try:
                tree = ast.parse(file_path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    if node.value.startswith(prefixes):
                        literals.add(node.value)
    return literals


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    boundary = ctx.boundary
    cfg = boundary.rule(RULE)
    prefixes = tuple(cfg.get("prefixes", _DEFAULT_PREFIXES))
    crashpoint_calls = frozenset(
        cfg.get("crashpoint_calls", _DEFAULT_CRASHPOINT_CALLS)
    )
    mutation_calls = frozenset(cfg.get("mutation_calls", _DEFAULT_MUTATION_CALLS))
    os_calls = frozenset(cfg.get("os_calls", _DEFAULT_OS_CALLS))
    os_receivers = frozenset(cfg.get("os_receivers", _DEFAULT_OS_RECEIVERS))
    store_calls = frozenset(cfg.get("store_calls", _DEFAULT_STORE_CALLS))
    store_receivers = frozenset(cfg.get("store_receivers", _DEFAULT_STORE_RECEIVERS))
    mutation_scope = tuple(cfg.get("mutation_modules", ()))
    declare_scope = tuple(cfg.get("modules", ("repro.*",)))
    exempt = frozenset(cfg.get("exempt", ()))
    graph = ctx.graph

    # -- declared -> exercised -------------------------------------------------

    test_paths_cfg = cfg.get("test_paths", ())
    base_dir = boundary.base_dir or Path(".")
    test_paths = [Path(base_dir, p) for p in test_paths_cfg]
    literals = _test_literals(test_paths, prefixes) if test_paths else None

    declared: list[tuple[str, "FunctionInfo", int]] = []
    for info in graph.functions_in(declare_scope).values():
        for site in info.calls:
            if site.name not in crashpoint_calls:
                continue
            call_node = None
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Call)
                    and node.lineno == site.line
                    and call_name(node) in crashpoint_calls
                    and node.args
                ):
                    call_node = node
                    break
            if call_node is None:
                continue
            site_id = _literal_prefix(call_node.args[0])
            if site_id is None or not site_id.startswith(prefixes):
                continue
            declared.append((site_id, info, site.line))

    if literals is not None:
        for site_id, info, line in declared:
            if site_id in exempt:
                continue
            exercised = any(site_id.startswith(lit) for lit in literals)
            if not exercised:
                yield Finding(
                    rule=RULE,
                    path=info.module.rel_path,
                    line=line,
                    symbol=f"{info.key[0]}:{site_id}",
                    message=(
                        f"crashpoint {site_id!r} is declared but no crash test "
                        f"under {', '.join(map(str, test_paths_cfg))} ever names "
                        f"it (or a prefix of it); add it to a crash matrix or "
                        f"baseline it with a rationale"
                    ),
                )

    # -- mutating -> declared --------------------------------------------------

    for info in graph.functions_in(mutation_scope).values():
        if info.name in exempt or f"{info.key[0]}:{info.qualname}" in exempt:
            continue
        if any(site.name in crashpoint_calls for site in info.calls):
            continue
        first_mutation = None
        for site in info.calls:
            if site.name in mutation_calls:
                first_mutation = site
                break
            if site.name in os_calls and site.receiver is not None and any(
                part in os_receivers for part in segments(site.receiver)
            ):
                first_mutation = site
                break
            if site.name in store_calls and site.receiver is not None and any(
                part in store_receivers for part in segments(site.receiver)
            ):
                first_mutation = site
                break
        if first_mutation is None:
            continue
        yield Finding(
            rule=RULE,
            path=info.module.rel_path,
            line=first_mutation.line,
            symbol=f"{info.key[0]}:{info.qualname}",
            message=(
                f"persisted mutation {first_mutation.name}() has no crashpoint "
                f"in this function, so no crash matrix can schedule a crash "
                f"against it; declare one under {'/'.join(prefixes)} or "
                f"baseline with a rationale"
            ),
        )


__all__ = ["RULE", "check"]

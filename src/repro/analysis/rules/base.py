"""AST helpers shared by the seglint rules."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def segments(dotted_name: str) -> list[str]:
    """Normalized path segments: leading underscores stripped, lowercase."""
    return [part.lstrip("_").lower() for part in dotted_name.split(".")]


def call_name(node: ast.Call) -> str | None:
    """The final identifier a call resolves through (``x.y.f(...)`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function, including methods."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    for qualname, node in walk(tree, ""):
        yield qualname, node  # type: ignore[misc]


def walk_function_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))

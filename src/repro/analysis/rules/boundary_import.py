"""Rule ``boundary-import``: untrusted code stays outside the enclave.

Paper Section II-A / IV-A: the untrusted host reaches trusted
functionality only through the declared ECALL interface
(:meth:`repro.sgx.enclave.EnclaveHandle.call`).  Statically that means
an untrusted module may not import enclave-internal modules — the
trusted file manager, access control, request handler, rollback guards,
journal, cache, sealing — except for the names the boundary map
explicitly allows (e.g. the host must be able to *construct*
``SeGShareEnclave`` before loading it, and the wire-format module is
shared by design).

The rule also flags ``._enclave`` attribute access anywhere in untrusted
code: that is the host reaching through :class:`EnclaveHandle` into the
enclave object itself, bypassing the ECALL gate the runtime enforces.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext, SourceModule

RULE = "boundary-import"


def _resolve_from(module: "SourceModule", node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module
    package = module.name.split(".")
    # level=1 strips the module's own name, each further level one package.
    if len(package) < node.level:
        return node.module
    base = package[: len(package) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    modules, boundary = ctx.modules, ctx.boundary
    allow_raw = boundary.rule(RULE).get("allow", {})
    allow = {name: tuple(names) for name, names in allow_raw.items()}

    for module in modules:
        if not boundary.is_untrusted(module.name):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if boundary.is_internal(alias.name):
                        yield Finding(
                            rule=RULE,
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=f"{module.name}:{alias.name}",
                            message=(
                                f"untrusted module imports enclave-internal "
                                f"module {alias.name!r}; go through "
                                f"EnclaveHandle.call/ECALLs instead"
                            ),
                        )
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_from(module, node)
                if target is None:
                    continue
                if boundary.is_internal(target):
                    allowed = allow.get(target, ())
                    for alias in node.names:
                        if alias.name in allowed or "*" in allowed:
                            continue
                        yield Finding(
                            rule=RULE,
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=f"{module.name}:{target}.{alias.name}",
                            message=(
                                f"untrusted module imports {alias.name!r} from "
                                f"enclave-internal module {target!r} (not in the "
                                f"boundary allow list)"
                            ),
                        )
                else:
                    for alias in node.names:
                        full = f"{target}.{alias.name}"
                        if boundary.is_internal(full):
                            yield Finding(
                                rule=RULE,
                                path=module.rel_path,
                                line=node.lineno,
                                symbol=f"{module.name}:{full}",
                                message=(
                                    f"untrusted module imports enclave-internal "
                                    f"module {full!r}"
                                ),
                            )
            elif isinstance(node, ast.Attribute) and node.attr == "_enclave":
                yield Finding(
                    rule=RULE,
                    path=module.rel_path,
                    line=node.lineno,
                    symbol=f"{module.name}:_enclave",
                    message=(
                        "untrusted code reaches through EnclaveHandle._enclave, "
                        "bypassing the ECALL interface"
                    ),
                )

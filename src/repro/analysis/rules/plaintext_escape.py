"""Rule ``plaintext-escape``: decrypted bytes must not reach untrusted stores.

Paper Section III (attacker model): the cloud provider reads every byte
the enclave hands to untrusted storage, so any value produced by a
decrypt/unseal call inside a trusted module must pass back through an
encrypt/seal/MAC before it may flow into a raw store ``put``.  The rule
runs a function-local taint analysis: decrypt/unseal results (and
everything assigned from them) are tainted; sanitizer calls cut the
taint; a tainted expression inside a store-write call is a finding.

Write paths through :class:`repro.sgx.protected_fs.ProtectedFs` are not
sinks — that layer encrypts before it stores — only raw backend
receivers (``store``/``backend``/``inner``/``_stores.*``) are.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import (
    call_name,
    dotted,
    iter_functions,
    segments,
    walk_function_body,
)

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RULE = "plaintext-escape"

_DEFAULT_SOURCES = ("decrypt", "unseal")
_DEFAULT_SANITIZERS = (
    "encrypt",
    "seal",
    "derive_key",
    "digest",
    "hexdigest",
    "sha256",
    "h_name",
    "_content_hash",
    "measurement",
    "signer_id",
)
_DEFAULT_SINK_METHODS = ("put",)
_DEFAULT_SINK_SEGMENTS = ("store", "stores", "backend", "backends", "inner")


def _assign_targets(node: ast.AST) -> Iterator[str]:
    """Dotted names a value lands in (tuple targets are flattened)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _assign_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _assign_targets(node.value)
    else:
        name = dotted(node)
        if name is not None:
            yield name


def _expr_tainted(
    expr: ast.AST,
    tainted: set[str],
    sources: frozenset[str],
    sanitizers: frozenset[str],
) -> bool:
    """Does ``expr`` carry taint?  Sanitizer calls cut entire subtrees."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in sources:
                return True
            if name in sanitizers:
                continue  # the call's result is ciphertext/a digest
        name_or_attr = dotted(node)
        if name_or_attr is not None and name_or_attr in tainted:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _collect_taint(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    sources: frozenset[str],
    sanitizers: frozenset[str],
) -> set[str]:
    """Fixpoint over the function body's assignments."""
    tainted: set[str] = set()
    assignments: list[tuple[list[str], ast.AST]] = []
    for node in walk_function_body(fn):
        if isinstance(node, ast.Assign):
            targets = [t for target in node.targets for t in _assign_targets(target)]
            assignments.append((targets, node.value))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value is not None:
            assignments.append((list(_assign_targets(node.target)), node.value))
        elif isinstance(node, ast.NamedExpr):
            assignments.append((list(_assign_targets(node.target)), node.value))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            assignments.append((list(_assign_targets(node.optional_vars)), node.context_expr))
    changed = True
    while changed:
        changed = False
        for targets, value in assignments:
            if not targets:
                continue
            if _expr_tainted(value, tainted, sources, sanitizers):
                for target in targets:
                    if target not in tainted:
                        tainted.add(target)
                        changed = True
    return tainted


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    modules, boundary = ctx.modules, ctx.boundary
    cfg = boundary.rule(RULE)
    sources = frozenset(cfg.get("sources", _DEFAULT_SOURCES))
    sanitizers = frozenset(cfg.get("sanitizers", _DEFAULT_SANITIZERS))
    sink_methods = frozenset(cfg.get("sink_methods", _DEFAULT_SINK_METHODS))
    sink_segments = frozenset(cfg.get("sink_receiver_segments", _DEFAULT_SINK_SEGMENTS))

    for module in modules:
        if not boundary.is_trusted(module.name):
            continue
        for qualname, fn in iter_functions(module.tree):
            tainted = _collect_taint(fn, sources, sanitizers)
            for node in walk_function_body(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr in sink_methods):
                    continue
                receiver = dotted(func.value)
                if receiver is None or not any(
                    segment in sink_segments for segment in segments(receiver)
                ):
                    continue
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if _expr_tainted(arg, tainted, sources, sanitizers):
                        yield Finding(
                            rule=RULE,
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=f"{module.name}:{qualname}",
                            message=(
                                f"decrypted/unsealed data flows into untrusted "
                                f"write {receiver}.{func.attr}() without an "
                                f"encrypt/seal/MAC in between"
                            ),
                        )
                        break

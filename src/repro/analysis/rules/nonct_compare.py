"""Rule ``nonct-compare``: secret comparisons must be constant time.

A ``==``/``!=`` over digests, MAC tags, or key material short-circuits
at the first differing byte, and the timing difference leaks how much of
a forgery matched — the classic MAC-forgery oracle (the GCM and PAE
implementations already use :func:`repro.util.encoding.ct_equal` for
exactly this reason).  In the modules the boundary map puts in scope
(``repro.crypto.*``, ``repro.sgx.*``, and the dedup store, whose
``hName`` is an HMAC), any equality whose operands *look like* secret
material must go through ``hmac.compare_digest``/``ct_equal`` instead.

Heuristics keep the noise down: comparisons against integer literals
(length/count checks) are skipped, and only the final identifier of each
operand is matched against the secret-name pattern.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import call_name, iter_functions, walk_function_body

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RULE = "nonct-compare"

_DEFAULT_MODULES = ("repro.crypto.*", "repro.sgx.*")
_DEFAULT_PATTERN = (
    r"(digest|hmac|\bmac\b|_mac\b|\btag\b|_tag\b|fingerprint|signature|signer"
    r"|secret|token|h_?name|_key\b|\bkey\b|\bacc\b|_acc\b|\broot\b|_root\b"
    r"|merkle_root|report_data)"
)
# Identifiers that *contain* a secret-ish word but denote public metadata
# about it: DIGEST_SIZE, key_count, tag_len are length checks, not tags.
_DEFAULT_EXCLUDE = r"(size|len|length|count|version|offset|index)$"


def _identifier(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return call_name(node)
    return None


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    modules, boundary = ctx.modules, ctx.boundary
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    pattern = re.compile(cfg.get("secret_pattern", _DEFAULT_PATTERN))
    exclude = re.compile(cfg.get("exclude_pattern", _DEFAULT_EXCLUDE))

    import fnmatch

    for module in modules:
        if not any(
            module.name == p or fnmatch.fnmatchcase(module.name, p) for p in scope
        ):
            continue
        for qualname, fn in iter_functions(module.tree):
            for node in walk_function_body(fn):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                operands = [node.left, *node.comparators]
                # Length/count checks compare against integer literals and
                # are not secret-dependent timing.
                if any(
                    isinstance(op, ast.Constant) and isinstance(op.value, (int, float))
                    for op in operands
                ):
                    continue
                # len(x) == DIGEST_SIZE compares a public length, whatever
                # the other operand is named.
                if any(
                    isinstance(op, ast.Call) and call_name(op) == "len"
                    for op in operands
                ):
                    continue
                secret = None
                for operand in operands:
                    identifier = _identifier(operand)
                    if identifier is None:
                        continue
                    lowered = identifier.lower()
                    if pattern.search(lowered) and not exclude.search(lowered):
                        secret = identifier
                        break
                if secret is None:
                    continue
                yield Finding(
                    rule=RULE,
                    path=module.rel_path,
                    line=node.lineno,
                    symbol=f"{module.name}:{qualname}",
                    message=(
                        f"non-constant-time comparison of {secret!r}; use "
                        f"hmac.compare_digest / repro.util.encoding.ct_equal"
                    ),
                )

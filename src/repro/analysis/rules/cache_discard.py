"""Rule ``cache-discard``: mutate storage only after dropping the cache.

The enclave-resident metadata cache (``repro.core.cache``, PR 2) holds
verified plaintext keyed by logical path.  Its one obligation is
coherence: a write or delete that changes the bytes under a cached key
must discard the entry *before* the mutation, so a fault halfway through
never leaves the cache serving pre-write plaintext over post-write
storage (the discard-before-write protocol in
``TrustedFileManager._write_guarded``).

Mechanically: inside any class that owns a cache reference (an
attribute whose name contains ``cache``), every
``write_file``/``remove``/``rename`` call on a protected-store receiver
must be preceded — same function, earlier line — by a ``discard`` or
``clear`` call on the cache.  Writes of objects that are never cached
(dedup content objects) carry a line-granular suppression explaining
why the protocol does not apply.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.boundary import BoundaryMap
from repro.analysis.engine import Finding, SourceModule
from repro.analysis.rules.base import dotted, segments, walk_function_body

RULE = "cache-discard"

_DEFAULT_MODULES = ("repro.core.*",)
_DEFAULT_WRITE_METHODS = ("write_file", "remove", "rename")
_DEFAULT_DISCARD_METHODS = ("discard", "clear")


def _class_owns_cache(cls: ast.ClassDef) -> bool:
    """Does the class assign a ``self.*cache*`` attribute anywhere?"""
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = dotted(target)
                if (
                    name is not None
                    and name.startswith("self.")
                    and "cache" in name.split(".")[-1].lower()
                ):
                    return True
    return False


def _iter_methods(cls: ast.ClassDef) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for child in cls.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{cls.name}.{child.name}", child


def check(modules: list[SourceModule], boundary: BoundaryMap) -> Iterator[Finding]:
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    write_methods = frozenset(cfg.get("write_methods", _DEFAULT_WRITE_METHODS))
    discard_methods = frozenset(cfg.get("discard_methods", _DEFAULT_DISCARD_METHODS))

    import fnmatch

    for module in modules:
        if not any(
            module.name == p or fnmatch.fnmatchcase(module.name, p) for p in scope
        ):
            continue
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or not _class_owns_cache(cls):
                continue
            for qualname, fn in _iter_methods(cls):
                writes: list[tuple[int, str, str]] = []
                discard_lines: list[int] = []
                for node in walk_function_body(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    receiver = dotted(func.value)
                    if receiver is None:
                        continue
                    is_cache_recv = any("cache" in s for s in segments(receiver))
                    if func.attr in discard_methods and is_cache_recv:
                        discard_lines.append(node.lineno)
                    elif func.attr in write_methods and not is_cache_recv:
                        writes.append((node.lineno, func.attr, receiver))
                for line, attr, receiver in sorted(writes):
                    if not any(d < line for d in discard_lines):
                        yield Finding(
                            rule=RULE,
                            path=module.rel_path,
                            line=line,
                            symbol=f"{module.name}:{qualname}",
                            message=(
                                f"{receiver}.{attr}() mutates the store without a "
                                f"prior cache discard/clear in this method "
                                f"(discard-before-write protocol)"
                            ),
                        )

"""Rule ``lock-discipline``: trusted-flow mutations run under path locks.

With the concurrent request pipeline (PR 4), two requests may interleave
in virtual time; the only thing keeping a pair of conflicting mutations
from racing is that every store mutation reachable from a request entry
point runs inside a :class:`~repro.core.locks.LockManager` acquisition
(``locks.for_request``/``locks.for_upload``, or an explicit
``locks.read``/``locks.write``/``locks.acquire``).  A mutator call that
no caller protects would silently bypass the two-phase-locking protocol
the linearizability tests rely on.

Same interprocedural skeleton as ``txn-discipline``: exposure propagates
as a least fixpoint from entry points (functions with no observed call
sites that are not declared wrappers), along call edges that are not
inside a lexical lock-establishing ``with`` block and do not originate
in a wrapper body.  A function is a violation if it is exposed and calls
a mutator outside such a block.  Lock-establishing ``with`` items are
recognized by method name *and* receiver: the call must go through an
attribute path containing a ``locks`` segment (``self.locks.write(...)``
counts, a file's ``write(...)`` does not).
"""

from __future__ import annotations

import ast
import fnmatch
from collections import defaultdict
from typing import Iterator

from repro.analysis.boundary import BoundaryMap
from repro.analysis.engine import Finding, SourceModule
from repro.analysis.rules.base import call_name, dotted, iter_functions, segments

RULE = "lock-discipline"

_DEFAULT_MODULES = ("repro.core.request_handler", "repro.core.access_control")
_DEFAULT_MUTATORS = (
    "write_dir",
    "write_acl",
    "write_content",
    "delete_content",
    "delete_acl",
    "write_member_list",
    "write_group_list",
    "write_quota",
)
_DEFAULT_LOCK_METHODS = ("for_request", "for_upload", "acquire", "read", "write")
_DEFAULT_LOCK_RECEIVERS = ("locks", "lock_manager")


class _FuncInfo:
    __slots__ = ("key", "name", "mutators_outside", "calls")

    def __init__(self, key: tuple[str, str], name: str) -> None:
        self.key = key
        self.name = name
        #: (line, mutator name) for mutator calls outside any lock span.
        self.mutators_outside: list[tuple[int, str]] = []
        #: (callee bare name, inside_lock) for every call in the body.
        self.calls: list[tuple[str, bool]] = []


def _is_lock_with(
    node: ast.With, methods: frozenset[str], receivers: frozenset[str]
) -> bool:
    for item in node.items:
        expr = item.context_expr
        if not (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)):
            continue
        if expr.func.attr not in methods:
            continue
        receiver = dotted(expr.func.value)
        if receiver is not None and any(
            part in receivers for part in segments(receiver)
        ):
            return True
    return False


def _scan(
    fn: ast.AST,
    info: _FuncInfo,
    mutators: frozenset[str],
    methods: frozenset[str],
    receivers: frozenset[str],
    in_lock: bool,
) -> None:
    for child in ast.iter_child_nodes(fn):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested definitions are scanned as their own functions
        child_in_lock = in_lock
        if isinstance(child, ast.With) and _is_lock_with(child, methods, receivers):
            child_in_lock = True
        if isinstance(child, ast.Call):
            name = call_name(child)
            if name is not None:
                info.calls.append((name, in_lock))
                if name in mutators and not in_lock:
                    info.mutators_outside.append((child.lineno, name))
        _scan(child, info, mutators, methods, receivers, child_in_lock)


def check(modules: list[SourceModule], boundary: BoundaryMap) -> Iterator[Finding]:
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    mutators = frozenset(cfg.get("mutators", _DEFAULT_MUTATORS))
    methods = frozenset(cfg.get("lock_methods", _DEFAULT_LOCK_METHODS))
    receivers = frozenset(cfg.get("lock_receiver_segments", _DEFAULT_LOCK_RECEIVERS))
    wrappers = frozenset(cfg.get("lock_wrappers", ()))
    exempt = frozenset(cfg.get("exempt", ()))

    funcs: dict[tuple[str, str], _FuncInfo] = {}
    positions: dict[tuple[str, str], tuple[SourceModule, str]] = {}
    for module in modules:
        if not any(
            module.name == p or fnmatch.fnmatchcase(module.name, p) for p in scope
        ):
            continue
        for qualname, fn in iter_functions(module.tree):
            key = (module.name, qualname)
            info = _FuncInfo(key, fn.name)
            _scan(fn, info, mutators, methods, receivers, in_lock=False)
            funcs[key] = info
            positions[key] = (module, qualname)

    # Call sites per bare callee name.
    sites: dict[str, list[tuple[tuple[str, str], bool]]] = defaultdict(list)
    for info in funcs.values():
        for callee, in_lock in info.calls:
            sites[callee].append((info.key, in_lock))

    # Least fixpoint on exposure, exactly as in txn-discipline: entry
    # points seed it; it flows along unlocked call edges from non-wrapper
    # bodies.
    exposed: set[tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for info in funcs.values():
            if info.key in exposed:
                continue
            call_sites = sites.get(info.name, [])
            if not call_sites:
                if info.name not in wrappers:
                    exposed.add(info.key)
                    changed = True
                continue
            if any(
                not in_lock
                and caller in exposed
                and funcs[caller].name not in wrappers
                for caller, in_lock in call_sites
            ):
                exposed.add(info.key)
                changed = True

    for info in funcs.values():
        if not info.mutators_outside or info.key not in exposed:
            continue
        if info.name in exempt or f"{info.key[0]}:{positions[info.key][1]}" in exempt:
            continue
        module, qualname = positions[info.key]
        line, mutator = info.mutators_outside[0]
        yield Finding(
            rule=RULE,
            path=module.rel_path,
            line=line,
            symbol=f"{module.name}:{qualname}",
            message=(
                f"{mutator}() is reachable from a request entry point with no "
                f"LockManager acquisition on the path; wrap the flow in "
                f"locks.for_request/for_upload (or an explicit locks.write) "
                f"or baseline it with a justification"
            ),
        )

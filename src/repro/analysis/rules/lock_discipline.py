"""Rule ``lock-discipline``: trusted-flow mutations run under path locks.

With the concurrent request pipeline (PR 4), two requests may interleave
in virtual time; the only thing keeping a pair of conflicting mutations
from racing is that every store mutation reachable from a request entry
point runs inside a :class:`~repro.core.locks.LockManager` acquisition
(``locks.for_request``/``locks.for_upload``, or an explicit
``locks.read``/``locks.write``/``locks.acquire``).  A mutator call that
no caller protects would silently bypass the two-phase-locking protocol
the linearizability tests rely on.

Same shape as ``txn-discipline``, on the shared call graph: a call site
is *protected* when one of its enclosing ``with`` spans is a lock
acquisition, recognized by method name *and* receiver — the call must go
through an attribute path containing a ``locks`` segment
(``self.locks.write(...)`` counts, a file's ``write(...)`` does not).
Exposure is the graph's shared entry-point fixpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import segments

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisContext

RULE = "lock-discipline"

_DEFAULT_MODULES = ("repro.core.request_handler", "repro.core.access_control")
_DEFAULT_MUTATORS = (
    "write_dir",
    "write_acl",
    "write_content",
    "delete_content",
    "delete_acl",
    "write_member_list",
    "write_group_list",
    "write_quota",
)
_DEFAULT_LOCK_METHODS = ("for_request", "for_upload", "acquire", "read", "write")
_DEFAULT_LOCK_RECEIVERS = ("locks", "lock_manager")


def check(ctx: "AnalysisContext") -> Iterator[Finding]:
    from repro.analysis.callgraph import CallSite, Span, exposure

    boundary = ctx.boundary
    cfg = boundary.rule(RULE)
    scope = boundary.rule_modules(RULE, _DEFAULT_MODULES)
    mutators = frozenset(cfg.get("mutators", _DEFAULT_MUTATORS))
    methods = frozenset(cfg.get("lock_methods", _DEFAULT_LOCK_METHODS))
    receivers = frozenset(cfg.get("lock_receiver_segments", _DEFAULT_LOCK_RECEIVERS))
    wrappers = frozenset(cfg.get("lock_wrappers", ()))
    exempt = frozenset(cfg.get("exempt", ()))

    def is_lock_span(span: Span) -> bool:
        if span.method not in methods or span.receiver is None:
            return False
        return any(part in receivers for part in segments(span.receiver))

    def protected(site: CallSite) -> bool:
        return any(is_lock_span(span) for span in site.spans)

    funcs = ctx.graph.functions_in(scope)
    exposed = exposure(funcs, protected, wrappers)

    for info in funcs.values():
        if info.key not in exposed:
            continue
        outside = [
            site
            for site in info.calls
            if site.name in mutators and not protected(site)
        ]
        if not outside:
            continue
        if info.name in exempt or f"{info.key[0]}:{info.qualname}" in exempt:
            continue
        site = outside[0]
        yield Finding(
            rule=RULE,
            path=info.module.rel_path,
            line=site.line,
            symbol=f"{info.key[0]}:{info.qualname}",
            message=(
                f"{site.name}() is reachable from a request entry point with no "
                f"LockManager acquisition on the path; wrap the flow in "
                f"locks.for_request/for_upload (or an explicit locks.write) "
                f"or baseline it with a justification"
            ),
        )

"""seglint command line: ``python -m repro.analysis.seglint [paths...]``.

Exit codes: 0 — clean (or fully baselined); 1 — new findings or a stale
baseline; 2 — configuration error (bad boundary map, unknown rule,
unparsable source).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.boundary import BoundaryError, BoundaryMap
from repro.analysis.engine import Baseline, analyze_paths
from repro.analysis.rules import REGISTRY


def _default_config(start: Path) -> Path | None:
    """Find ``analysis/boundary.toml`` walking up from ``start``."""
    for candidate in [start, *start.parents]:
        config = candidate / "analysis" / "boundary.toml"
        if config.exists():
            return config
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.seglint",
        description="Trust-boundary static analysis for the SeGShare reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--boundary", help="boundary map (default: nearest analysis/boundary.toml)")
    parser.add_argument("--baseline", help="baseline file (default: alongside the boundary map)")
    parser.add_argument(
        "--no-baseline", action="store_true", help="report every finding, waiving nothing"
    )
    parser.add_argument(
        "--write-baseline", action="store_true", help="rewrite the baseline from current findings"
    )
    parser.add_argument(
        "--rules", help=f"comma-separated subset of: {', '.join(REGISTRY)}"
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.boundary:
            boundary_path = Path(args.boundary)
        else:
            found = _default_config(Path.cwd())
            if found is None:
                print("seglint: no analysis/boundary.toml found (use --boundary)", file=sys.stderr)
                return 2
            boundary_path = found
        boundary = BoundaryMap.load(boundary_path)
        rules = args.rules.split(",") if args.rules else None
        findings = analyze_paths(args.paths, boundary, rules=rules)
    except BoundaryError as exc:
        print(f"seglint: {exc}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else boundary_path.parent / "baseline.json"
    )
    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"seglint: wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if args.no_baseline:
        new, stale = findings, []
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BoundaryError as exc:
            print(f"seglint: {exc}", file=sys.stderr)
            return 2
        new, stale = baseline.apply(findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.__dict__ for finding in new],
                    "stale_baseline": stale,
                    "checked_rules": rules or list(REGISTRY),
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        for entry in stale:
            print(f"stale baseline entry (delete it): {entry}")
        if new or stale:
            print(
                f"seglint: {len(new)} new finding(s), {len(stale)} stale baseline "
                f"entr{'y' if len(stale) == 1 else 'ies'}"
            )
        else:
            waived = len(findings) - len(new)
            suffix = f" ({waived} baselined)" if waived else ""
            print(f"seglint: clean{suffix}")
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())

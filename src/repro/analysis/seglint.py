"""seglint command line: ``python -m repro.analysis.seglint [paths...]``.

Exit codes: 0 — clean (or fully baselined); 1 — new findings, a stale
baseline, or (under ``--strict-suppressions``) an unused inline
suppression; 2 — configuration error (bad boundary map, unknown rule,
unparsable source).

Output formats: ``text`` (default), ``json``, and ``sarif`` (SARIF
2.1.0, one run, findings as ``error`` results and unused suppressions
as ``warning`` results) for code-scanning upload from CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.boundary import BoundaryError, BoundaryMap
from repro.analysis.engine import Baseline, Finding, run_analysis
from repro.analysis.rules import REGISTRY

#: Pseudo-rule id SARIF results use for unused inline suppressions.
UNUSED_SUPPRESSION_RULE = "unused-suppression"


def _default_config(start: Path) -> Path | None:
    """Find ``analysis/boundary.toml`` walking up from ``start``."""
    for candidate in [start, *start.parents]:
        config = candidate / "analysis" / "boundary.toml"
        if config.exists():
            return config
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.seglint",
        description="Trust-boundary static analysis for the SeGShare reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--boundary", help="boundary map (default: nearest analysis/boundary.toml)")
    parser.add_argument("--baseline", help="baseline file (default: alongside the boundary map)")
    parser.add_argument(
        "--no-baseline", action="store_true", help="report every finding, waiving nothing"
    )
    parser.add_argument(
        "--write-baseline", action="store_true", help="rewrite the baseline from current findings"
    )
    parser.add_argument(
        "--rules", help=f"comma-separated subset of: {', '.join(REGISTRY)}"
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help="treat unused seglint:ignore comments as errors instead of warnings",
    )
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    return parser


def sarif_report(
    findings: list[Finding],
    unused: list[tuple[str, int, str]],
    rules: list[str],
    strict_suppressions: bool,
) -> dict:
    """A minimal SARIF 2.1.0 log: one run, one result per finding."""

    def location(path: str, line: int) -> dict:
        return {
            "physicalLocation": {
                "artifactLocation": {"uri": path.replace("\\", "/")},
                "region": {"startLine": line},
            }
        }

    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": f"{finding.message} [{finding.symbol}]"},
            "locations": [location(finding.path, finding.line)],
        }
        for finding in findings
    ]
    results.extend(
        {
            "ruleId": UNUSED_SUPPRESSION_RULE,
            "level": "error" if strict_suppressions else "warning",
            "message": {"text": f"unused suppression: {text}"},
            "locations": [location(path, line)],
        }
        for path, line, text in unused
    )
    rule_ids = rules + ([UNUSED_SUPPRESSION_RULE] if unused else [])
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "seglint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [{"id": rule_id} for rule_id in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.boundary:
            boundary_path = Path(args.boundary)
        else:
            found = _default_config(Path.cwd())
            if found is None:
                print("seglint: no analysis/boundary.toml found (use --boundary)", file=sys.stderr)
                return 2
            boundary_path = found
        boundary = BoundaryMap.load(boundary_path)
        rules = args.rules.split(",") if args.rules else None
        result = run_analysis(args.paths, boundary, rules=rules)
    except BoundaryError as exc:
        print(f"seglint: {exc}", file=sys.stderr)
        return 2
    findings = result.findings
    unused = result.unused_suppressions

    baseline_path = (
        Path(args.baseline) if args.baseline else boundary_path.parent / "baseline.json"
    )
    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"seglint: wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if args.no_baseline:
        new, stale = findings, []
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BoundaryError as exc:
            print(f"seglint: {exc}", file=sys.stderr)
            return 2
        new, stale = baseline.apply(
            findings, rules=None if rules is None else frozenset(rules)
        )

    checked = rules or list(REGISTRY)
    if args.format == "sarif":
        print(json.dumps(sarif_report(new, unused, checked, args.strict_suppressions), indent=2))
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.__dict__ for finding in new],
                    "stale_baseline": stale,
                    "unused_suppressions": [
                        {"path": path, "line": line, "text": text}
                        for path, line, text in unused
                    ],
                    "checked_rules": checked,
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        for entry in stale:
            print(f"stale baseline entry (delete it): {entry}")
        for path, line, text in unused:
            kind = "error" if args.strict_suppressions else "warning"
            print(f"{path}:{line}: {kind}: unused suppression: {text}")
        if new or stale:
            print(
                f"seglint: {len(new)} new finding(s), {len(stale)} stale baseline "
                f"entr{'y' if len(stale) == 1 else 'ies'}"
            )
        else:
            waived = len(findings) - len(new)
            suffix = f" ({waived} baselined)" if waived else ""
            print(f"seglint: clean{suffix}")
    failed = bool(new or stale) or (args.strict_suppressions and bool(unused))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

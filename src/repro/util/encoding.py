"""Byte-level helpers: hex codecs, constant-time compare, exact reads."""

from __future__ import annotations

import hmac
from typing import BinaryIO


def to_hex(data: bytes) -> str:
    """Return the lowercase hexadecimal representation of ``data``."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Parse a hexadecimal string produced by :func:`to_hex`."""
    return bytes.fromhex(text)


def ct_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings in constant time.

    Used for MAC tags and certificate fingerprints so that comparison time
    does not leak how many leading bytes matched.
    """
    return hmac.compare_digest(a, b)


def read_exact(stream: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes from ``stream`` or raise ``EOFError``."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(f"expected {n} bytes, stream ended {remaining} short")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)

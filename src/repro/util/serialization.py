"""Deterministic binary serialization used across the code base.

All on-disk and on-wire structures (ACL files, directory files, TLS records,
certificates, request messages) are encoded with the same primitives:

* fixed-width big-endian integers (``u8``/``u32``/``u64``),
* length-prefixed byte strings (``u32`` length + raw bytes),
* length-prefixed UTF-8 strings.

The encoding is deliberately simple and canonical: for a given logical value
there is exactly one byte representation, so hashes and MACs over encoded
structures are well defined.
"""

from __future__ import annotations

import struct

from repro.errors import ReproError

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

U32_MAX = 0xFFFFFFFF
U64_MAX = 0xFFFFFFFFFFFFFFFF


class SerializationError(ReproError):
    """Malformed or truncated serialized data."""


def pack_u32(value: int) -> bytes:
    """Encode ``value`` as a 4-byte big-endian unsigned integer."""
    if not 0 <= value <= U32_MAX:
        raise SerializationError(f"u32 out of range: {value}")
    return _U32.pack(value)


def pack_u64(value: int) -> bytes:
    """Encode ``value`` as an 8-byte big-endian unsigned integer."""
    if not 0 <= value <= U64_MAX:
        raise SerializationError(f"u64 out of range: {value}")
    return _U64.pack(value)


def pack_bytes(data: bytes) -> bytes:
    """Encode ``data`` as a u32 length prefix followed by the raw bytes."""
    return pack_u32(len(data)) + data


def pack_str(text: str) -> bytes:
    """Encode ``text`` as length-prefixed UTF-8."""
    return pack_bytes(text.encode("utf-8"))


def unpack_u32(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a u32 at ``offset``; return ``(value, next_offset)``."""
    if offset + 4 > len(data):
        raise SerializationError("truncated u32")
    return _U32.unpack_from(data, offset)[0], offset + 4


def unpack_u64(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a u64 at ``offset``; return ``(value, next_offset)``."""
    if offset + 8 > len(data):
        raise SerializationError("truncated u64")
    return _U64.unpack_from(data, offset)[0], offset + 8


def unpack_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed byte string; return ``(value, next_offset)``."""
    length, offset = unpack_u32(data, offset)
    if offset + length > len(data):
        raise SerializationError("truncated byte string")
    return data[offset : offset + length], offset + length


def unpack_str(data: bytes, offset: int = 0) -> tuple[str, int]:
    """Decode a length-prefixed UTF-8 string; return ``(value, next_offset)``."""
    raw, offset = unpack_bytes(data, offset)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise SerializationError("invalid UTF-8 in string") from exc


class Writer:
    """Incremental encoder producing a canonical byte string.

    Example::

        w = Writer()
        w.u32(1).str("alice").bytes(payload)
        blob = w.take()
    """

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise SerializationError(f"u8 out of range: {value}")
        self._parts.append(_U8.pack(value))
        return self

    def u32(self, value: int) -> "Writer":
        self._parts.append(pack_u32(value))
        return self

    def u64(self, value: int) -> "Writer":
        self._parts.append(pack_u64(value))
        return self

    def bool(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def bytes(self, data: bytes) -> "Writer":
        self._parts.append(pack_bytes(data))
        return self

    def raw(self, data: bytes) -> "Writer":
        """Append ``data`` without a length prefix (caller knows the length)."""
        self._parts.append(data)
        return self

    def str(self, text: str) -> "Writer":
        self._parts.append(pack_str(text))
        return self

    def str_list(self, items: list[str]) -> "Writer":
        self.u32(len(items))
        for item in items:
            self.str(item)
        return self

    def take(self) -> bytes:
        """Return the accumulated bytes and reset the writer."""
        result = b"".join(self._parts)
        self._parts = []
        return result


class Reader:
    """Incremental decoder over a byte string with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def u8(self) -> int:
        if self._offset + 1 > len(self._data):
            raise SerializationError("truncated u8")
        value = self._data[self._offset]
        self._offset += 1
        return value

    def u32(self) -> int:
        value, self._offset = unpack_u32(self._data, self._offset)
        return value

    def u64(self) -> int:
        value, self._offset = unpack_u64(self._data, self._offset)
        return value

    def bool(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise SerializationError(f"invalid bool byte: {value}")
        return bool(value)

    def bytes(self) -> bytes:
        value, self._offset = unpack_bytes(self._data, self._offset)
        return value

    def raw(self, n: int) -> bytes:
        """Read exactly ``n`` un-prefixed bytes."""
        if self._offset + n > len(self._data):
            raise SerializationError("truncated raw read")
        value = self._data[self._offset : self._offset + n]
        self._offset += n
        return value

    def str(self) -> str:
        value, self._offset = unpack_str(self._data, self._offset)
        return value

    def str_list(self) -> list[str]:
        count = self.u32()
        return [self.str() for _ in range(count)]

    def expect_end(self) -> None:
        """Raise unless the entire input was consumed."""
        if self.remaining:
            raise SerializationError(f"{self.remaining} trailing bytes")

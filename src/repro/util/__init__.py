"""Small shared utilities: serialization, encoding, and byte helpers."""

from repro.util.encoding import (
    ct_equal,
    from_hex,
    read_exact,
    to_hex,
)
from repro.util.serialization import (
    Reader,
    Writer,
    pack_bytes,
    pack_str,
    pack_u32,
    pack_u64,
    unpack_bytes,
    unpack_str,
    unpack_u32,
    unpack_u64,
)

__all__ = [
    "Reader",
    "Writer",
    "ct_equal",
    "from_hex",
    "pack_bytes",
    "pack_str",
    "pack_u32",
    "pack_u64",
    "read_exact",
    "to_hex",
    "unpack_bytes",
    "unpack_str",
    "unpack_u32",
    "unpack_u64",
]

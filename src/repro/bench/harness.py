"""Experiment plumbing: timing helpers, result records, table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.netsim.clock import SimClock


@dataclass
class ExperimentResult:
    """One experiment's output: named columns, one dict per row."""

    experiment: str
    description: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **values: Any) -> None:
        self.rows.append(values)

    def format(self) -> str:
        return (
            f"== {self.experiment}: {self.description} ==\n"
            + format_rows(self.columns, self.rows)
            + (f"\n{self.notes}" if self.notes else "")
        )

    def series(self, x: str, y: str) -> list[tuple[Any, Any]]:
        """Extract an (x, y) series, e.g. for asserting figure shapes."""
        return [(row[x], row[y]) for row in self.rows if y in row]


def format_rows(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Render rows as a fixed-width text table."""
    widths = {col: len(col) for col in columns}
    rendered: list[dict[str, str]] = []
    for row in rows:
        cells = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.4f}"
            else:
                text = str(value)
            cells[col] = text
            widths[col] = max(widths[col], len(text))
        rendered.append(cells)
    header = "  ".join(f"{col:>{widths[col]}}" for col in columns)
    lines = [header, "-" * len(header)]
    for cells in rendered:
        lines.append("  ".join(f"{cells[col]:>{widths[col]}}" for col in columns))
    return "\n".join(lines)


def timed(clock: SimClock, fn: Callable[[], Any]) -> float:
    """Virtual seconds consumed by ``fn()``."""
    start = clock.now()
    fn()
    return clock.now() - start


def mean_ci95(samples: list[float]) -> tuple[float, float]:
    """Mean and 95% confidence half-width — the paper's error bars.

    Uses the normal approximation (1.96·sd/√n), adequate for the n=100
    repetitions the paper runs; returns (mean, 0.0) for n < 2.
    """
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, 1.96 * (variance**0.5) / (n**0.5)

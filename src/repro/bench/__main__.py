"""Command-line entry point: ``python -m repro.bench <experiment>``."""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the SeGShare paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig3", "exp2", "fig4", "fig5", "storage", "table3", "tcb",
            "revocation", "mset", "dedup", "rotation", "crypto", "all",
        ],
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (slower); default uses reduced sweeps",
    )
    args = parser.parse_args(argv)

    runners = {
        "fig3": lambda: figures.fig3(
            sizes_mb=(1, 10, 50, 100, 200) if args.full else (1, 10, 50)
        ).format(),
        "exp2": lambda: figures.exp2().format(),
        "fig4": lambda: figures.fig4(
            counts=(1, 10, 100, 1000) if args.full else (1, 10, 100)
        ).format(),
        "fig5": lambda: figures.fig5(max_x=14 if args.full else 8).format(),
        "storage": lambda: figures.storage(
            sizes_mb=(10, 200) if args.full else (10,)
        ).format(),
        "table3": figures.table3,
        "tcb": figures.tcb,
        "revocation": lambda: figures.ablation_revocation(
            file_counts=(10, 100, 500) if args.full else (10, 50)
        ).format(),
        "mset": lambda: figures.ablation_mset(
            file_count=511 if args.full else 127
        ).format(),
        "dedup": lambda: figures.ablation_dedup().format(),
        "rotation": lambda: figures.ablation_rotation(
            file_counts=(10, 50, 200) if args.full else (10, 50)
        ).format(),
        "crypto": lambda: figures.crypto_throughput().format(),
    }
    if args.experiment == "all":
        for name, runner in runners.items():
            print(runner())
            print()
    else:
        print(runners[args.experiment]())
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic workload generation for benchmarks and tests.

All content is derived from seeds via SHAKE-256, so every run sees the
same bytes without storing fixtures.  ``unique_bytes`` guarantees
distinct content per (seed, index) — important for the dedup benches,
where duplicate ratios must be exact.
"""

from __future__ import annotations

import hashlib

MB = 1_000_000  # the paper uses decimal megabytes
KB = 1_000


def pseudo_bytes(seed: str, size: int) -> bytes:
    """``size`` deterministic bytes derived from ``seed``."""
    return hashlib.shake_256(seed.encode("utf-8")).digest(size) if size else b""


def unique_bytes(seed: str, index: int, size: int) -> bytes:
    """Deterministic content, distinct for every (seed, index)."""
    return pseudo_bytes(f"{seed}/{index}", size)


def binary_tree_paths(count: int) -> list[str]:
    """``count`` file paths arranged as leaves of a binary directory tree.

    Mirrors Fig. 5's layout (1): directories form a binary tree and each
    leaf directory holds one file.  Path ``i`` encodes the bit pattern of
    ``i`` as nested ``0/``/``1/`` directories.
    """
    paths = []
    for i in range(count):
        bits = format(i, "b") if i else "0"
        directory = "/" + "/".join(f"b{bit}" for bit in bits) + "/"
        paths.append(directory + f"f{i}.dat")
    return paths


def flat_paths(count: int) -> list[str]:
    """``count`` file paths directly under the root — Fig. 5's layout (2)."""
    return [f"/f{i}.dat" for i in range(count)]


def directories_of(paths: list[str]) -> list[str]:
    """All directories needed to hold ``paths``, in creation order."""
    seen: dict[str, None] = {}
    for path in paths:
        parts = path.split("/")[1:-1]
        prefix = "/"
        for part in parts:
            prefix = prefix + part + "/"
            seen.setdefault(prefix)
    return list(seen)

"""Experiment drivers for every table and figure of the paper's §VII.

Each function deploys a fresh simulated world, runs the paper's workload,
and returns an :class:`ExperimentResult` whose rows mirror the paper's
plot series.  Latencies are virtual-clock seconds from the calibrated
Azure environment (see EXPERIMENTS.md for paper-vs-measured values).
"""

from __future__ import annotations

import time

from repro.baselines.hybrid_encryption import HybridEncryptionShare
from repro.baselines.webdav_plain import APACHE_PROFILE, NGINX_PROFILE, PlainWebDavServer
from repro.bench.harness import ExperimentResult, timed
from repro.bench.workloads import (
    KB,
    MB,
    binary_tree_paths,
    directories_of,
    flat_paths,
    pseudo_bytes,
    unique_bytes,
)
from repro.core.enclave_app import SeGShareOptions
from repro.core.features import format_table3
from repro.core.model import default_group
from repro.core.server import Deployment, deploy
from repro.crypto import rsa
from repro.crypto.pae import AesGcmPae, HmacStreamPae
from repro.netsim import azure_wan_env

#: One RSA key shared by all benchmark users: pure-Python keygen is slow
#: and key material is irrelevant to the measured latencies.
_SHARED_KEY: rsa.RsaPrivateKey | None = None


def shared_user_key() -> rsa.RsaPrivateKey:
    global _SHARED_KEY
    if _SHARED_KEY is None:
        _SHARED_KEY = rsa.generate_keypair(1024)
    return _SHARED_KEY


def _deploy(
    options: SeGShareOptions | None = None, jitter: float = 0.0, seed: int = 0
) -> Deployment:
    return deploy(env=azure_wan_env(jitter=jitter, seed=seed), options=options)


def exp2_noisy(runs: int = 100, jitter: float = 0.08, seed: int = 7) -> ExperimentResult:
    """E2 with the paper's measurement methodology: mean of ``runs``
    repetitions over a jittery WAN, reported with 95% CIs."""
    from repro.bench.harness import mean_ci95

    result = ExperimentResult(
        experiment="exp2-noisy",
        description=f"membership ops, mean of {runs} runs ± 95% CI (seconds)",
        columns=["op", "mean_s", "ci95_s"],
        notes="Methodology mirror of §VII-B: per-run fresh connection, noisy WAN.",
    )
    deployment = _deploy(jitter=jitter, seed=seed)
    identity = deployment.user_identity("owner", key=shared_user_key())
    clock = deployment.env.clock
    adds, revokes = [], []
    for i in range(runs):
        start = clock.now()
        deployment.connect(identity).add_user(f"u{i}", f"g{i}")
        adds.append(clock.now() - start)
        start = clock.now()
        deployment.connect(identity).remove_user(f"u{i}", f"g{i}")
        revokes.append(clock.now() - start)
    for op, samples in (("add", adds), ("revoke", revokes)):
        mean, ci = mean_ci95(samples)
        result.add(op=op, mean_s=mean, ci95_s=ci)
    return result


# -- E1: Fig. 3 — upload/download latency vs file size ------------------------------


def fig3(sizes_mb: tuple[int, ...] = (1, 10, 50, 100, 200)) -> ExperimentResult:
    """Mean latency of uploads and downloads: SeGShare vs Apache vs nginx."""
    result = ExperimentResult(
        experiment="fig3",
        description="up/download latency by file size (seconds, virtual clock)",
        columns=[
            "size_mb",
            "segshare_up", "segshare_down",
            "apache_up", "apache_down",
            "nginx_up", "nginx_down",
        ],
        notes=(
            "Paper (200 MB): SeGShare 2.39/2.17 s, Apache 4.74/2.62 s, "
            "nginx 1.84/0.93 s — SeGShare sits between the plaintext servers."
        ),
    )
    for size_mb in sizes_mb:
        data = pseudo_bytes(f"fig3/{size_mb}", size_mb * MB)
        row: dict[str, float] = {"size_mb": size_mb}

        deployment = _deploy(SeGShareOptions(hide_paths=True))
        client = deployment.new_user("u", key=shared_user_key())
        clock = deployment.env.clock
        row["segshare_up"] = timed(clock, lambda: client.upload("/f.dat", data))
        row["segshare_down"] = timed(clock, lambda: client.download("/f.dat"))

        for prefix, profile in (("apache", APACHE_PROFILE), ("nginx", NGINX_PROFILE)):
            env = azure_wan_env()
            server = PlainWebDavServer(env, profile)
            dav = server.connect()
            row[f"{prefix}_up"] = timed(env.clock, lambda: dav.put("/f.dat", data))
            row[f"{prefix}_down"] = timed(env.clock, lambda: dav.get("/f.dat"))
        result.add(**row)
    return result


# -- E2: §VII-B text — first membership add/revoke + independence claims ----------------


def exp2(repeats: int = 10) -> ExperimentResult:
    """Latency of adding/revoking a user's *first* group membership.

    Each measured operation runs on a fresh connection (handshake
    included), as in the paper's request-start-to-response-end latency.
    The second half varies stored files and file sizes to demonstrate the
    claimed independence.
    """
    result = ExperimentResult(
        experiment="exp2",
        description="membership add/revoke latency, first group (seconds)",
        columns=["scenario", "add_s", "revoke_s"],
        notes="Paper: 154.05 ms add, 153.40 ms revoke; independent of |rP|, |FS|, file sizes.",
    )

    def measure(deployment: Deployment, scenario: str) -> None:
        owner_identity = deployment.user_identity("owner", key=shared_user_key())
        clock = deployment.env.clock
        adds, revokes = [], []
        for i in range(repeats):
            start = clock.now()
            owner = deployment.connect(owner_identity)
            owner.add_user(f"user{i}", f"group{i}")
            adds.append(clock.now() - start)
            start = clock.now()
            owner = deployment.connect(owner_identity)
            owner.remove_user(f"user{i}", f"group{i}")
            revokes.append(clock.now() - start)
        result.add(
            scenario=scenario,
            add_s=sum(adds) / len(adds),
            revoke_s=sum(revokes) / len(revokes),
        )

    measure(_deploy(), "empty share")

    deployment = _deploy()
    seeder = deployment.new_user("owner", key=shared_user_key())
    for i in range(50):
        seeder.upload(f"/seed{i}.dat", unique_bytes("exp2", i, 10 * KB))
    measure(deployment, "50 stored files")

    deployment = _deploy()
    seeder = deployment.new_user("owner", key=shared_user_key())
    seeder.upload("/big.dat", pseudo_bytes("exp2/big", 20 * MB))
    for i in range(100):
        seeder.set_permission("/big.dat", default_group(f"px{i}"), "r")
    measure(deployment, "20 MB file, 100 permissions")
    return result


# -- E3: Fig. 4 — membership/permission ops vs prior count -------------------------------


def fig4(counts: tuple[int, ...] = (1, 10, 100, 1000), repeats: int = 5) -> ExperimentResult:
    """Add/revoke latency with N prior memberships (resp. permissions)."""
    result = ExperimentResult(
        experiment="fig4",
        description="dynamic group/permission operations vs prior count (seconds)",
        columns=["prior", "memb_add", "memb_revoke", "perm_add", "perm_revoke"],
        notes=(
            "Paper: 150.29–150.92 ms additions, 150.11–151.13 ms revocations up "
            "to 1000 memberships — logarithmic dependency, invisible in the total."
        ),
    )
    for prior in counts:
        deployment = _deploy()
        admin_identity = deployment.user_identity("admin", key=shared_user_key())
        admin = deployment.connect(admin_identity)
        clock = deployment.env.clock

        # Membership experiment: "bob" is already in `prior` groups.
        for i in range(prior):
            admin.add_user("bob", f"g{i}")
        admin.add_user("nobody", "extra")  # group exists; bob not a member
        def fresh_op(fn) -> float:
            """Connect + operate, as the paper measures (fresh request)."""
            start = clock.now()
            conn = deployment.connect(admin_identity)
            fn(conn)
            return clock.now() - start

        memb_add, memb_revoke = [], []
        for _ in range(repeats):
            memb_add.append(fresh_op(lambda c: c.add_user("bob", "extra")))
            memb_revoke.append(fresh_op(lambda c: c.remove_user("bob", "extra")))

        # Permission experiment: a file that `prior` groups can access.
        admin.upload("/shared.dat", pseudo_bytes("fig4", 10 * KB))
        for i in range(prior):
            admin.set_permission("/shared.dat", default_group(f"px{i}"), "r")
        perm_add, perm_revoke = [], []
        for _ in range(repeats):
            perm_add.append(fresh_op(lambda c: c.set_permission("/shared.dat", "extra", "rw")))
            perm_revoke.append(fresh_op(lambda c: c.set_permission("/shared.dat", "extra", "")))

        result.add(
            prior=prior,
            memb_add=sum(memb_add) / repeats,
            memb_revoke=sum(memb_revoke) / repeats,
            perm_add=sum(perm_add) / repeats,
            perm_revoke=sum(perm_revoke) / repeats,
        )
    return result


# -- E4: Fig. 5 — individual-file rollback protection overhead ------------------------------


def fig5(max_x: int = 8, file_size: int = 10 * KB) -> ExperimentResult:
    """Upload/download of one 10 kB file with 2^x − 1 files already stored.

    Four series: rollback protection {off, individual} × directory layout
    {binary tree, flat}.  Pre-population bypasses the network (direct
    handler calls); the measured request runs the full client path.
    """
    result = ExperimentResult(
        experiment="fig5",
        description="rollback-protection latency overhead (seconds)",
        columns=[
            "x", "files",
            "off_tree_up", "off_tree_down", "on_tree_up", "on_tree_down",
            "off_flat_up", "off_flat_down", "on_flat_up", "on_flat_down",
        ],
        notes=(
            "Paper: minimal download 111.65 ms; at 16,384 files 115.93 ms "
            "(tree) / 121.95 ms (flat); upload overhead negligible."
        ),
    )
    for x in range(0, max_x + 1):
        count = 2**x - 1
        row: dict[str, float] = {"x": x, "files": count}
        for mode_label, rollback in (("off", "off"), ("on", "individual")):
            for layout_label, layout_fn in (("tree", binary_tree_paths), ("flat", flat_paths)):
                deployment = _deploy(SeGShareOptions(rollback=rollback))
                handler = deployment.server.enclave.handler
                paths = layout_fn(count)
                for directory in directories_of(paths + [f"/m{x}.dat"]):
                    handler.put_dir("seeder", directory)
                for i, path in enumerate(paths):
                    handler.put_file("seeder", path, unique_bytes("fig5", i, file_size))
                identity = deployment.user_identity("u", key=shared_user_key())
                clock = deployment.env.clock
                data = pseudo_bytes("fig5/probe", file_size)
                # Fresh connection per measured request, as in the paper.
                start = clock.now()
                client = deployment.connect(identity)
                client.upload(f"/m{x}.dat", data)
                up = clock.now() - start
                start = clock.now()
                client = deployment.connect(identity)
                client.download(f"/m{x}.dat")
                down = clock.now() - start
                row[f"{mode_label}_{layout_label}_up"] = up
                row[f"{mode_label}_{layout_label}_down"] = down
        result.add(**row)
    return result


# -- E5: §VII-B — storage overhead -------------------------------------------------------------


def storage(sizes_mb: tuple[int, ...] = (10, 200), acl_entries: tuple[int, ...] = (95, 1119)) -> ExperimentResult:
    """Encrypted storage per file vs plaintext size and ACL size."""
    result = ExperimentResult(
        experiment="storage",
        description="storage overhead of encrypted file + ACL",
        columns=["size_mb", "acl_entries", "plain_bytes", "stored_bytes", "overhead_pct"],
        notes=(
            "Paper: 10 MB with 95/1119 entries -> 1.12 %/1.48 %; "
            "200 MB -> 1.05 %/1.06 %."
        ),
    )
    for size_mb in sizes_mb:
        for entries in acl_entries:
            deployment = _deploy()
            handler = deployment.server.enclave.handler
            manager = deployment.server.enclave.manager
            data = pseudo_bytes(f"storage/{size_mb}", size_mb * MB)
            handler.put_file("owner", "/f.dat", data)
            for i in range(entries - 1):  # the owner entry is the first
                handler.set_permission("owner", "/f.dat", default_group(f"g{i}"), "r")
            stored = manager.content_stored_size("/f.dat")
            from repro.core.acl import acl_path

            stored += manager._content.stored_size(manager._sp(acl_path("/f.dat")))
            result.add(
                size_mb=size_mb,
                acl_entries=entries,
                plain_bytes=len(data),
                stored_bytes=stored,
                overhead_pct=round(100 * (stored - len(data)) / len(data), 3),
            )
    return result


# -- E6/E7: Table III and the TCB report --------------------------------------------------------


def table3() -> str:
    return format_table3()


def tcb() -> str:
    deployment = _deploy()
    report = deployment.server.enclave.tcb_loc_report()
    return (
        report.format()
        + "\n\nPaper: 8441 LoC total (8102 + TLS glue), excluding the Intel SGX SDK."
    )


# -- A1: ablation — revocation cost vs the hybrid-encryption baseline ----------------------------


def ablation_revocation(
    file_counts: tuple[int, ...] = (10, 100, 500), file_size: int = 100 * KB
) -> ExperimentResult:
    """Group-membership revocation: SeGShare vs eager/lazy HE."""
    result = ExperimentResult(
        experiment="ablation-revocation",
        description="membership revocation latency vs files in group (seconds)",
        columns=["files", "segshare", "he_eager", "he_lazy", "lazy_window"],
        notes=(
            "SeGShare revokes in O(1) file updates; eager HE re-encrypts every "
            "group file; lazy HE is fast but leaves old keys working (window)."
        ),
    )
    for count in file_counts:
        deployment = _deploy()
        admin = deployment.new_user("admin", key=shared_user_key())
        clock = deployment.env.clock
        admin.add_user("victim", "team")
        for i in range(count):
            admin.upload(f"/t{i}.dat", unique_bytes("rev", i, file_size))
            admin.set_permission(f"/t{i}.dat", "team", "rw")
        seg = timed(clock, lambda: admin.remove_user("victim", "team"))

        row = {"files": count, "segshare": seg}
        for label, lazy in (("he_eager", False), ("he_lazy", True)):
            env = azure_wan_env()
            share = HybridEncryptionShare(clock=env.clock, lazy_revocation=lazy)
            share.create_group("team", {"admin", "victim"})
            for i in range(count):
                share.upload("admin", f"/t{i}.dat", unique_bytes("rev", i, file_size))
                share.grant_group(f"/t{i}.dat", "team")
            old_key = share.leak_file_key("victim", "/t0.dat")
            row[label] = timed(env.clock, lambda: share.remove_group_member("team", "victim"))
            if lazy:
                row["lazy_window"] = share.can_decrypt_with_old_key("/t0.dat", old_key)
        result.add(**row)
    return result


# -- A2: ablation — bucket-hash optimization ------------------------------------------------------


def ablation_mset(
    file_count: int = 511, buckets: tuple[int, ...] = (1, 16, 64, 256)
) -> ExperimentResult:
    """Download latency under rollback protection vs bucket count.

    ``buckets=1`` degenerates to the paper's first optimization only
    (multiset hashes without bucketing): every validation rehashes all
    siblings.  More buckets shrink the per-level validation set.
    """
    result = ExperimentResult(
        experiment="ablation-mset",
        description=f"flat layout, {file_count} files: download latency vs bucket count",
        columns=["buckets", "download_s", "upload_s"],
    )
    for bucket_count in buckets:
        deployment = _deploy(
            SeGShareOptions(rollback="individual", rollback_buckets=bucket_count)
        )
        handler = deployment.server.enclave.handler
        for i, path in enumerate(flat_paths(file_count)):
            handler.put_file("seeder", path, unique_bytes("mset", i, 10 * KB))
        client = deployment.new_user("u", key=shared_user_key())
        clock = deployment.env.clock
        up = timed(clock, lambda: client.upload("/probe.dat", pseudo_bytes("mset/p", 10 * KB)))
        down = timed(clock, lambda: client.download("/probe.dat"))
        result.add(buckets=bucket_count, download_s=down, upload_s=up)
    return result


# -- A3: ablation — deduplication savings and PAE throughput ----------------------------------------


def ablation_dedup(
    file_count: int = 50, file_size: int = 256 * KB, duplicate_ratios: tuple[float, ...] = (0.0, 0.5, 0.9)
) -> ExperimentResult:
    """Untrusted storage consumed with and without deduplication."""
    result = ExperimentResult(
        experiment="ablation-dedup",
        description=f"{file_count} files x {file_size // KB} kB: stored bytes vs duplicate ratio",
        columns=["dup_ratio", "plain_bytes", "stored_dedup", "stored_plainenc", "savings_pct"],
    )
    for ratio in duplicate_ratios:
        unique = max(1, round(file_count * (1 - ratio)))
        stored = {}
        for label, enable in (("stored_dedup", True), ("stored_plainenc", False)):
            deployment = _deploy(SeGShareOptions(enable_dedup=enable))
            handler = deployment.server.enclave.handler
            for i in range(file_count):
                content = unique_bytes("dedup", i % unique, file_size)
                handler.put_file("owner", f"/d{i}.dat", content)
            totals = deployment.server.enclave.manager.stored_bytes()
            stored[label] = totals["content"] + totals["dedup"]
        result.add(
            dup_ratio=ratio,
            plain_bytes=file_count * file_size,
            stored_dedup=stored["stored_dedup"],
            stored_plainenc=stored["stored_plainenc"],
            savings_pct=round(
                100 * (1 - stored["stored_dedup"] / stored["stored_plainenc"]), 2
            ),
        )
    return result


def ablation_rotation(
    file_counts: tuple[int, ...] = (10, 50, 200), file_size: int = 100 * KB
) -> ExperimentResult:
    """Root-key rotation cost vs revocation cost.

    The contrast that motivates SeGShare's enforcement-based design:
    revocation is O(1) in the data, while a full cryptographic re-key —
    which HE-style systems effectively pay on *every* revocation — is
    O(total data).  Rotation exists as a deliberate offline operation.
    """
    from repro.core.rotation import ca_authorized_rotation

    result = ExperimentResult(
        experiment="ablation-rotation",
        description="root-key rotation vs membership revocation (seconds)",
        columns=["files", "total_mb", "revoke_s", "rotate_s", "ratio"],
        notes="Rotation re-encrypts everything; revocation touches one member list.",
    )
    for count in file_counts:
        deployment = _deploy(SeGShareOptions(enable_dedup=True))
        admin = deployment.new_user("admin", key=shared_user_key())
        admin.add_user("victim", "team")
        for i in range(count):
            admin.upload(f"/r{i}.dat", unique_bytes("rot", i, file_size))
        clock = deployment.env.clock
        revoke = timed(clock, lambda: admin.remove_user("victim", "team"))
        rotate = timed(
            clock, lambda: ca_authorized_rotation(deployment.ca, deployment.server)
        )
        result.add(
            files=count,
            total_mb=round(count * file_size / MB, 1),
            revoke_s=revoke,
            rotate_s=rotate,
            ratio=round(rotate / revoke, 1),
        )
    return result


def crypto_throughput(size: int = 4 * MB) -> ExperimentResult:
    """Real wall-clock throughput of the two PAE backends."""
    result = ExperimentResult(
        experiment="crypto",
        description=f"PAE backend throughput over {size // MB} MB (real time)",
        columns=["backend", "enc_mb_s", "dec_mb_s"],
        notes="AES-GCM is the fidelity backend (pure Python); HMAC-stream is the default.",
    )
    key = bytes(16)
    for name, backend, payload in (
        ("hmac-stream", HmacStreamPae(), pseudo_bytes("ct", size)),
        ("aes-gcm (pure py)", AesGcmPae(), pseudo_bytes("ct", 64 * KB)),
    ):
        start = time.perf_counter()
        blob = backend.encrypt(key, payload)
        enc_time = time.perf_counter() - start
        start = time.perf_counter()
        backend.decrypt(key, blob)
        dec_time = time.perf_counter() - start
        result.add(
            backend=name,
            enc_mb_s=round(len(payload) / MB / enc_time, 2),
            dec_mb_s=round(len(payload) / MB / dec_time, 2),
        )
    return result

"""Closed-loop multi-client driver over the parallel virtual clock.

The paper's server is multi-threaded: SGX SDK switchless workers pull
requests off a shared queue, so N concurrent clients see throughput
scale with the worker pool until they contend on shared state.  This
driver reproduces that shape deterministically: client request streams
are interleaved in *virtual* time on a :class:`~repro.netsim.clock.
ParallelClock` — Python still executes one request at a time (in global
arrival order), but each request runs on its own track through
:meth:`~repro.sgx.switchless.SwitchlessQueue.dispatch`, so overlapping
independent requests cost the max, not the sum, of their durations,
while lock waits, journal commits, and counter increments rendezvous on
the shared serialization points.

Closed-loop means each simulated client issues its next request the
moment its previous one completes — the standard throughput-benchmark
client model, and the one the paper's `wrk`-style load generators use.

Because execution order *is* arrival order, the concurrent run is
serializable by construction; the linearizability property test
(tests/core/test_linearizability.py) checks that the final state equals
a fresh serial run's over many seeded schedules.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.netsim import Link, NetworkEnv, ParallelClock
from repro.netsim.network import AZURE_WAN, LinkSpec

#: Virtual-time accounts that are *waits* on serialization points rather
#: than useful work; the bench reports them as the contention breakdown.
WAIT_ACCOUNTS = (
    "lock-wait",
    "worker-wait",
    "commit-wait",
    "counter-wait",
    "anchor-wait",
    "guard-shard-wait",
    "serialize-wait",
)


def parallel_env(spec: LinkSpec = AZURE_WAN, seed: int = 0) -> NetworkEnv:
    """A :class:`NetworkEnv` whose clock supports parallel tracks."""
    clock = ParallelClock()
    return NetworkEnv(clock=clock, link=Link(clock, spec, seed=seed))


@dataclass
class OpRecord:
    """One completed client operation, with its track's timings."""

    client: int
    index: int
    label: str
    start: float
    end: float
    accounts: dict[str, float]

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class DriverResult:
    """A full multi-client run: per-op records plus aggregate shape."""

    ops: list[OpRecord]
    makespan: float
    #: Sum of per-op latencies — the *work* (+waits); > makespan iff
    #: operations genuinely overlapped.
    busy_seconds: float = field(init=False)
    wait_breakdown: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.busy_seconds = sum(op.latency for op in self.ops)
        self.wait_breakdown = {
            account: round(
                sum(op.accounts.get(account, 0.0) for op in self.ops), 9
            )
            for account in WAIT_ACCOUNTS
        }

    @property
    def throughput(self) -> float:
        """Completed operations per virtual second of makespan."""
        if self.makespan <= 0:
            return float("inf")
        return len(self.ops) / self.makespan

    @property
    def mean_latency(self) -> float:
        return self.busy_seconds / len(self.ops) if self.ops else 0.0

    def wait_seconds(self) -> float:
        return sum(self.wait_breakdown.values())

    def summary(self) -> dict[str, Any]:
        return {
            "ops": len(self.ops),
            "makespan_s": round(self.makespan, 6),
            "throughput_ops_per_s": round(self.throughput, 3),
            "mean_latency_s": round(self.mean_latency, 6),
            "busy_seconds": round(self.busy_seconds, 6),
            "wait_breakdown_s": self.wait_breakdown,
        }


class ConcurrentDriver:
    """Drive N closed-loop clients through a server's switchless pool.

    ``server`` must have been deployed on a :func:`parallel_env` — the
    driver refuses a serial clock, since dispatching onto it would
    silently degrade to the single-flow model and report fake scaling.
    """

    def __init__(self, server: Any) -> None:
        clock = server.env.clock
        if not isinstance(clock, ParallelClock):
            raise TypeError(
                "ConcurrentDriver needs a server on a ParallelClock "
                "(build its NetworkEnv with repro.bench.concurrency.parallel_env)"
            )
        self._server = server
        self._clock = clock
        self._queue = server.switchless

    def run(self, clients: list[list[Callable[[], Any]]]) -> DriverResult:
        """Run every client's operation list to completion.

        ``clients[c]`` is client ``c``'s ordered stream of thunks; the
        stream is closed-loop (op ``k+1`` arrives when op ``k``
        completes).  Operations across clients are dispatched in global
        arrival order, ties broken by client index — deterministic, so
        a given schedule is exactly reproducible.
        """
        clock, queue = self._clock, self._queue
        # Setup traffic (priming PUTs) may have left a commit epoch open;
        # close it *before* the measured window so its deferred guard
        # flush and counter increments are not billed to this run.
        engine = getattr(getattr(self._server, "enclave", None), "engine", None)
        if engine is not None:
            engine.quiesce()
        begin = clock.now()
        # (arrival, client, op_index) — heap pops give global arrival order.
        ready = [(begin, c, 0) for c in range(len(clients)) if clients[c]]
        heapq.heapify(ready)
        records: list[OpRecord] = []
        while ready:
            arrival, c, k = heapq.heappop(ready)
            queue.dispatch(clients[c][k], arrival=arrival, label=f"c{c}/op{k}")
            track = queue.last_track
            assert track is not None and track.end is not None
            records.append(
                OpRecord(
                    client=c,
                    index=k,
                    label=track.label,
                    start=track.start,
                    end=track.end,
                    accounts=dict(track.accounts),
                )
            )
            if k + 1 < len(clients[c]):
                heapq.heappush(ready, (track.end, c, k + 1))
        # Close any commit epoch still open after the last write: its
        # deferred guard flush is part of the work and belongs in the
        # makespan, not in the next measurement.
        if engine is not None:
            engine.quiesce()
        return DriverResult(ops=records, makespan=clock.now() - begin)

"""Benchmark harness regenerating every table and figure of the paper.

Each experiment in DESIGN.md's index has a driver in
:mod:`repro.bench.figures` returning structured rows, and a pretty
printer.  Run them from the command line::

    python -m repro.bench fig3      # Fig. 3  up/download latency
    python -m repro.bench exp2      # §VII-B  membership add/revoke
    python -m repro.bench fig4      # Fig. 4  dynamic operations
    python -m repro.bench fig5      # Fig. 5  rollback protection
    python -m repro.bench storage   # §VII-B  storage overhead
    python -m repro.bench table3    # Table III feature matrix
    python -m repro.bench tcb       # enclave LoC report
    python -m repro.bench all

Latencies are virtual-clock seconds from the calibrated Azure model; the
pytest-benchmark files under ``benchmarks/`` additionally measure real
wall time of the same operations.
"""

from repro.bench.concurrency import ConcurrentDriver, DriverResult, parallel_env
from repro.bench.harness import ExperimentResult, format_rows
from repro.bench import figures

__all__ = [
    "ConcurrentDriver",
    "DriverResult",
    "ExperimentResult",
    "figures",
    "format_rows",
    "parallel_env",
]

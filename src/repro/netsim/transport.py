"""Message-oriented transport over a simulated link.

The TLS record layer runs on top of :class:`Connection`: a pair of framed
message endpoints whose transfers charge the shared virtual clock.  The
simulation is synchronous and event-driven on one thread: if the peer has
registered a receiver callback (servers do), a sent message is delivered
— and processed — inline; otherwise it queues in the peer's inbox until
``recv`` (clients poll this way).

``Listener``/``Endpoint`` give server and client code a socket-like shape
so the untrusted TLS terminator reads like network code.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import NetworkError
from repro.netsim.network import Link


class Connection:
    """One side of an established connection."""

    def __init__(self, link: Link, is_client: bool) -> None:
        self._link = link
        self._is_client = is_client
        self._inbox: deque[bytes] = deque()
        self._receiver: Callable[[bytes], None] | None = None
        self._closed = False
        self.peer: "Connection | None" = None

    # -- sending -------------------------------------------------------------

    def send(self, message: bytes) -> None:
        """Send a message, paying propagation delay plus serialization time."""
        self._ensure_open()
        if self._is_client:
            self._link.transfer_up(len(message))
        else:
            self._link.transfer_down(len(message))
        self._deliver_to_peer(message)

    def send_stream(self, message: bytes) -> None:
        """Send a follow-up chunk of an already-flowing stream.

        Streamed chunks after the first do not pay propagation delay again
        (the pipe is full); this models the paper's interleaved streaming.
        """
        self._ensure_open()
        if self._is_client:
            self._link.stream_up(len(message))
        else:
            self._link.stream_down(len(message))
        self._deliver_to_peer(message)

    def _deliver_to_peer(self, message: bytes) -> None:
        peer = self.peer
        if peer is None or peer._closed:
            raise NetworkError("peer is gone")
        # A faulty link may deliver 0 copies (silent loss) or several
        # (duplication); a healthy link always answers 1.
        for _ in range(self._link.delivery_copies()):
            if peer._receiver is not None:
                peer._receiver(message)
            else:
                peer._inbox.append(message)

    # -- receiving -----------------------------------------------------------

    def set_receiver(self, receiver: Callable[[bytes], None] | None) -> None:
        """Register a push receiver; pending inbox messages are drained into it."""
        self._receiver = receiver
        if receiver is not None:
            while self._inbox:
                receiver(self._inbox.popleft())

    def recv(self) -> bytes:
        self._ensure_open()
        if self._receiver is not None:
            raise NetworkError("connection is in push mode; recv() unavailable")
        if not self._inbox:
            raise NetworkError("no message pending (deadlock in simulated exchange)")
        return self._inbox.popleft()

    def pending(self) -> int:
        return len(self._inbox)

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise NetworkError("connection is closed")


def connection_pair(link: Link) -> tuple[Connection, Connection]:
    """Create the two ends of a connection sharing a link."""
    client = Connection(link, is_client=True)
    server = Connection(link, is_client=False)
    client.peer = server
    server.peer = client
    return client, server


class Listener:
    """Server-side accept hook.

    The server registers an ``on_connect`` callback; each client
    :meth:`Endpoint.connect` synchronously creates a connection pair and
    hands the server end to the callback before the client end is
    returned.
    """

    def __init__(self, link: Link, on_connect: Callable[[Connection], None]) -> None:
        self._link = link
        self._on_connect = on_connect

    def _accept(self) -> Connection:
        # TCP-style connection establishment: one round trip before any
        # application byte flows (the paper measures from request start,
        # which for a fresh connection includes this).
        self._link.clock.charge(self._link.spec.rtt, account="network")
        client_end, server_end = connection_pair(self._link)
        self._on_connect(server_end)
        return client_end


class Endpoint:
    """Client-side connector bound to a listener."""

    def __init__(self, listener: Listener) -> None:
        self._listener = listener

    def connect(self) -> Connection:
        return self._listener._accept()

"""Untrusted shared-memory coherence log for the replicated cluster.

Replicas in a :mod:`repro.cluster` deployment mutate one shared
repository, so each enclave's metadata cache and dedup index can go
stale behind a peer's committed transaction.  The board is the
cross-replica invalidation channel that wins those caches back: a
single host-memory cell holding a monotonically increasing **epoch
counter** plus a bounded ring of **sealed invalidation entries**, one
per published commit epoch.

Everything here lives outside the enclave, like the group-commit
epoch-open bit the cluster front door already reads without an ECALL
(PR 7): the host can read, reorder, truncate, or corrupt it at will.
The security argument therefore never rests on this module — entries
are PAE-encrypted by the publishing enclave with the epoch number bound
as AAD, and :class:`repro.core.coherence.CoherenceManager` treats *any*
anomaly (missing epoch, failed authentication, counter rewind) as a cue
to fall back to a strict full cache discard.  A Byzantine board costs
cache hits, never correctness.

The ring is bounded (:data:`DEFAULT_CAPACITY` entries): when a
publisher evicts the oldest entry, a replica lagging past it observes a
gap and full-discards, exactly as if the host had torn the log.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict

#: Entries retained before the oldest is evicted.  Large enough that a
#: replica only falls off the tail when it idles through hundreds of
#: peer commits — at which point a full discard costs little extra.
DEFAULT_CAPACITY = 256


class CoherenceBoard:
    """Host-memory epoch counter + bounded ring of sealed entries.

    ``epoch`` is the number of the newest published entry; epoch 0 means
    "nothing published yet".  :meth:`place` only accepts ``epoch + 1``,
    so concurrent publishers race on a compare-and-swap and the loser
    re-seals against the new epoch — the counter never skips and never
    rewinds (a *well-behaved* host; enclaves verify regardless).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("coherence board capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._epoch = 0
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._publishes = 0
        self._resets = 0
        self._evictions = 0

    @property
    def epoch(self) -> int:
        """Current epoch — the cheap check replicas poll before serving."""
        return self._epoch

    def place(self, epoch: int, blob: bytes, reset: bool = False) -> bool:
        """Publish ``blob`` as entry ``epoch``; return ``False`` on a race.

        Only ``epoch == self.epoch + 1`` is accepted, so a publisher that
        lost the race re-reads :attr:`epoch` and re-seals (the AAD binds
        the epoch number, so the blob cannot simply be renumbered).  A
        ``reset`` entry supersedes everything before it: the queued tail
        is dropped, forcing lagging readers onto the full-discard path.
        """
        with self._lock:
            if epoch != self._epoch + 1:
                return False
            if reset:
                self._entries.clear()
                self._resets += 1
            self._entries[epoch] = blob
            self._epoch = epoch
            self._publishes += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def entry(self, epoch: int) -> bytes | None:
        """The sealed blob published at ``epoch``, or ``None`` if evicted."""
        with self._lock:
            return self._entries.get(epoch)

    def snapshot(self) -> Dict[str, int]:
        """Host-side counters for stats surfacing and benchmarks."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "entries": len(self._entries),
                "capacity": self._capacity,
                "publishes": self._publishes,
                "resets": self._resets,
                "evictions": self._evictions,
            }


__all__ = ["CoherenceBoard", "DEFAULT_CAPACITY"]

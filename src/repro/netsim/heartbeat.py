"""Failure-detecting heartbeats over the virtual clock.

A replicated front door needs to *notice* that a replica died before it
can fail over, and the paper's evaluation philosophy — simulate time,
never wall-clock — applies to failure detection too.  The monitor
models the classic heartbeat protocol: every member is probed each
``interval`` simulated seconds over the LAN, and a member is declared
failed after ``miss_threshold`` consecutive silent probes.  The
detection *delay* (``interval * miss_threshold``) is charged to the
clock when a failure is confirmed, so failover latency shows up in
makespans and benchmark rows instead of being free.

The probes themselves are plain callables (``True`` while the member is
alive); the cluster wires them to enclave liveness.  Everything here is
untrusted host-side machinery — heartbeats carry no secrets and an
adversarial cloud can at worst declare a live replica dead, which costs
availability, never integrity (the guards and journal protect state).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List

from repro.netsim.clock import SimClock


@dataclass
class HeartbeatStats:
    """Counters exposed through the cluster's ``stats()``."""

    probes: int = 0
    failures_detected: int = 0
    #: Total simulated seconds spent waiting out detection timeouts.
    detection_seconds: float = 0.0

    def snapshot(self) -> dict:
        return asdict(self)


class HeartbeatMonitor:
    """Periodic liveness probing with a miss-threshold failure detector.

    ``interval`` and ``miss_threshold`` follow the usual LAN defaults
    (tens of milliseconds, a few misses); ``probe_cost`` is one LAN
    round trip charged per probe so heavy polling is not free.
    """

    def __init__(
        self,
        clock: SimClock | None,
        interval: float = 0.025,
        miss_threshold: int = 3,
        probe_cost: float = 0.0002,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self._clock = clock
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.probe_cost = probe_cost
        self._probes: Dict[str, Callable[[], bool]] = {}
        self.stats = HeartbeatStats()

    @property
    def detection_timeout(self) -> float:
        """Seconds of silence before a member is declared failed."""
        return self.interval * self.miss_threshold

    @property
    def members(self) -> List[str]:
        return sorted(self._probes)

    def register(self, name: str, probe: Callable[[], bool]) -> None:
        """Start monitoring ``name``; ``probe()`` is True while it lives."""
        self._probes[name] = probe

    def unregister(self, name: str) -> None:
        self._probes.pop(name, None)

    def poll(self) -> List[str]:
        """Probe every member once; returns the members that failed to answer."""
        down: List[str] = []
        for name, probe in sorted(self._probes.items()):
            self.stats.probes += 1
            if self._clock is not None:
                self._clock.charge(self.probe_cost, account="heartbeat")
            if not probe():
                down.append(name)
        return down

    def confirm_failure(self, name: str) -> float:
        """Charge the detection delay for ``name`` and record the event.

        Called once the cluster decides a member is gone: the miss
        threshold means the failure was only *observable* after
        ``detection_timeout`` simulated seconds of silence, so that
        delay lands on the clock here.  Returns the charged delay.
        """
        del name  # the delay is identical for every member
        timeout = self.detection_timeout
        self.stats.failures_detected += 1
        self.stats.detection_seconds += timeout
        if self._clock is not None:
            self._clock.charge(timeout, account="failover-detect")
        return timeout

"""Deterministic simulation substrate: virtual time and a network model.

The paper's evaluation runs on two Azure VMs (client in central US, server
in east US).  This package replaces that testbed with a virtual clock and
a calibrated link/cost model so latency experiments are deterministic and
reproducible on any machine.  Real bytes still flow through real crypto;
only *time* is simulated.
"""

from repro.netsim.clock import ParallelClock, SimClock, TrackClock
from repro.netsim.coherence import CoherenceBoard
from repro.netsim.heartbeat import HeartbeatMonitor, HeartbeatStats
from repro.netsim.network import Link, LinkSpec, NetworkEnv, azure_wan_env, lan_env
from repro.netsim.transport import Connection, Endpoint, Listener

__all__ = [
    "CoherenceBoard",
    "Connection",
    "Endpoint",
    "HeartbeatMonitor",
    "HeartbeatStats",
    "Link",
    "LinkSpec",
    "Listener",
    "NetworkEnv",
    "ParallelClock",
    "SimClock",
    "TrackClock",
    "azure_wan_env",
    "lan_env",
]

"""A virtual clock for deterministic latency accounting.

Components never sleep; they *charge* durations to the clock.  A latency
measurement is then simply ``clock.now() - start``.  Because every charge
is deterministic (cost models are pure functions of byte counts and
operation types), experiment results are reproducible bit-for-bit.

The clock also keeps named accounts so experiments can break a latency
down into components (network, crypto, enclave transitions, storage),
which the ablation benches report.
"""

from __future__ import annotations

from collections import defaultdict


class SimClock:
    """Virtual time in seconds, advanced explicitly by cost charges."""

    def __init__(self) -> None:
        self._now = 0.0
        self._accounts: dict[str, float] = defaultdict(float)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def charge(self, seconds: float, account: str = "other") -> None:
        """Advance the clock by ``seconds``, attributing them to ``account``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._now += seconds
        self._accounts[account] += seconds

    def advance_to(self, timestamp: float, account: str = "wait") -> None:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._accounts[account] += timestamp - self._now
            self._now = timestamp

    def accounts(self) -> dict[str, float]:
        """A snapshot of time spent per account since construction."""
        return dict(self._accounts)

    def reset_accounts(self) -> None:
        self._accounts.clear()


class Stopwatch:
    """Measure a span of virtual time.

    >>> clock = SimClock()
    >>> with Stopwatch(clock) as watch:
    ...     clock.charge(0.25, "network")
    >>> watch.elapsed
    0.25
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._clock.now() - self._start

"""A virtual clock for deterministic latency accounting.

Components never sleep; they *charge* durations to the clock.  A latency
measurement is then simply ``clock.now() - start``.  Because every charge
is deterministic (cost models are pure functions of byte counts and
operation types), experiment results are reproducible bit-for-bit.

The clock also keeps named accounts so experiments can break a latency
down into components (network, crypto, enclave transitions, storage),
which the ablation benches report.

Two clocks exist:

* :class:`SimClock` — one serial timeline; every charge advances global
  time.  This is the default and models a single-flow server.
* :class:`ParallelClock` — the same interface, but requests can run on
  private :class:`TrackClock` timelines.  Overlapping independent
  requests then cost the *max*, not the sum, of their durations, and the
  base timeline is the makespan over all closed tracks.

Serialization points (lock waits, journal batch commits, monotonic
counter increments) are modeled as *rendezvous*: :meth:`SimClock.exclusive`
keeps a release time per named resource and advances the entering
timeline to it.  On a serial clock time is globally monotonic, so a
resource's release time can never be in the future and the rendezvous is
a natural no-op — serial benchmarks are unaffected.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class SimClock:
    """Virtual time in seconds, advanced explicitly by cost charges."""

    def __init__(self) -> None:
        self._now = 0.0
        self._accounts: dict[str, float] = defaultdict(float)
        #: Release time per named serial resource (see :meth:`exclusive`).
        self._resources: dict[str, float] = {}

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def charge(self, seconds: float, account: str = "other") -> None:
        """Advance the clock by ``seconds``, attributing them to ``account``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._now += seconds
        self._accounts[account] += seconds

    def advance_to(self, timestamp: float, account: str = "wait") -> None:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._accounts[account] += timestamp - self._now
            self._now = timestamp

    def accounts(self) -> dict[str, float]:
        """A snapshot of time spent per account since construction."""
        return dict(self._accounts)

    def reset_accounts(self) -> None:
        self._accounts.clear()

    # -- serialization points -------------------------------------------------

    def resource_release(self, name: str) -> float:
        """When the named serial resource was last released (0.0 if never)."""
        return self._resources.get(name, 0.0)

    @contextmanager
    def exclusive(self, name: str, account: str = "serialize-wait") -> Iterator[None]:
        """A rendezvous on the serial resource ``name``.

        Entering waits (by advancing the current timeline) until the
        resource's previous holder released it; leaving publishes the new
        release time.  On a serial clock this never waits — time is
        globally monotonic, so the release time is always in the past.
        On a :class:`ParallelClock` it is what makes journal commits,
        counter increments, and guard-shard updates serialize across
        otherwise-overlapping request tracks.
        """
        release = self._resources.get(name, 0.0)
        if release > self.now():
            self.advance_to(release, account=account)
        try:
            yield
        finally:
            if self.now() > self._resources.get(name, 0.0):
                self._resources[name] = self.now()


class TrackClock:
    """One request's private timeline inside a :class:`ParallelClock`.

    A track starts at its request's arrival time and accumulates the
    charges made while it is the active track.  ``end`` is set when the
    track closes; ``elapsed`` is then the request's latency.
    """

    def __init__(self, label: str, start: float) -> None:
        self.label = label
        self.start = start
        self._now = start
        self.end: float | None = None
        self.accounts: dict[str, float] = defaultdict(float)

    def now(self) -> float:
        return self._now

    def charge(self, seconds: float, account: str = "other") -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._now += seconds
        self.accounts[account] += seconds

    def advance_to(self, timestamp: float, account: str = "wait") -> None:
        if timestamp > self._now:
            self.accounts[account] += timestamp - self._now
            self._now = timestamp

    @property
    def elapsed(self) -> float:
        """Time spent on this track so far (its latency once closed)."""
        return (self._now if self.end is None else self.end) - self.start


class ParallelClock(SimClock):
    """A :class:`SimClock` whose requests may run on parallel tracks.

    While a track is open (see :meth:`track`), ``now``/``charge``/
    ``advance_to`` route to it, so components charging "the clock" charge
    the in-flight request without knowing about concurrency.  Closing a
    track merges its end into the base timeline, which therefore reads as
    the *makespan* — the wall-clock a real multi-threaded server would
    show.  ``accounts()`` aggregates across tracks and thus sums *work*;
    work can exceed the makespan exactly when requests overlapped.

    Tracks nest LIFO.  A nested track models a synchronous sub-task: when
    it closes, the enclosing timeline advances to its end.
    """

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[TrackClock] = []
        #: Every track ever opened, in open order (benchmarks read these
        #: for per-request latencies and account breakdowns).
        self.tracks: list[TrackClock] = []

    # -- routing --------------------------------------------------------------

    def active_track(self) -> TrackClock | None:
        return self._stack[-1] if self._stack else None

    def now(self) -> float:
        if self._stack:
            return self._stack[-1].now()
        return self._now

    def charge(self, seconds: float, account: str = "other") -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if self._stack:
            self._stack[-1].charge(seconds, account)
            self._accounts[account] += seconds
        else:
            super().charge(seconds, account)

    def advance_to(self, timestamp: float, account: str = "wait") -> None:
        if self._stack:
            track = self._stack[-1]
            if timestamp > track.now():
                self._accounts[account] += timestamp - track.now()
                track.advance_to(timestamp, account)
        else:
            super().advance_to(timestamp, account)

    # -- track lifecycle ------------------------------------------------------

    def open_track(self, label: str = "task", start: float | None = None) -> TrackClock:
        """Open a private timeline starting at ``start`` (default: now).

        ``start`` may lie before the base clock — a request that arrived
        while earlier requests were still executing begins at its own
        arrival time, which is the whole point of parallel tracks.
        """
        track = TrackClock(label, self.now() if start is None else start)
        self._stack.append(track)
        self.tracks.append(track)
        return track

    def close_track(self, track: TrackClock, join: bool = True) -> None:
        """Close the innermost track (must be ``track``) and merge its end.

        ``join=False`` models an *asynchronous* sub-task — background work
        (like a group-commit epoch close) that nobody waits on directly:
        the caller's timeline does not advance, but the track's end still
        counts toward the makespan.
        """
        if not self._stack or self._stack[-1] is not track:
            raise RuntimeError("tracks must close LIFO (innermost first)")
        self._stack.pop()
        track.end = track.now()
        if join and self._stack:
            # A nested track is a synchronous sub-task: its caller resumes
            # when it finishes.
            self._stack[-1].advance_to(track.end, account="join")
        elif track.end > self._now:
            # Top-level join: the base timeline is the makespan so far.
            self._now = track.end

    @contextmanager
    def track(self, label: str = "task", start: float | None = None) -> Iterator[TrackClock]:
        """Run the body on its own timeline; yields the :class:`TrackClock`."""
        opened = self.open_track(label, start)
        try:
            yield opened
        finally:
            self.close_track(opened)


class Stopwatch:
    """Measure a span of virtual time.

    >>> clock = SimClock()
    >>> with Stopwatch(clock) as watch:
    ...     clock.charge(0.25, "network")
    >>> watch.elapsed
    0.25
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._clock.now() - self._start

"""Link and environment models for the simulated network.

A :class:`Link` charges virtual time for message transfers using the
classic latency/bandwidth model: ``rtt/2 + bytes/bandwidth`` per one-way
message.  Environments bundle a clock and a link spec; two calibrated
presets mirror the paper's evaluation setups:

* :func:`azure_wan_env` — the Azure central-US client / east-US server
  pair of Section VII-B (wide-area RTT, ~1 Gbit/s-class path).
* :func:`lan_env` — a same-rack deployment, useful for ablations that
  should not be network-dominated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.netsim.clock import SimClock


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a network path.

    ``bandwidth_up`` is client→server bytes/second; ``bandwidth_down`` is
    server→client.  ``per_message_overhead`` models framing and kernel
    costs charged per message in addition to serialization time.
    ``jitter`` adds seeded random variation (standard deviation as a
    fraction of the one-way latency) so experiments can report confidence
    intervals like the paper's mean-of-100-runs plots; 0 keeps the link
    fully deterministic.
    """

    rtt: float
    bandwidth_up: float
    bandwidth_down: float
    per_message_overhead: float = 5e-6
    jitter: float = 0.0

    def one_way_latency(self) -> float:
        return self.rtt / 2


# Calibrated against Fig. 3: a 200 MB plaintext upload to nginx takes
# ~1.84 s and the download ~0.93 s in the paper's Azure setup, which this
# spec reproduces once per-request server costs are added.
AZURE_WAN = LinkSpec(rtt=0.030, bandwidth_up=112e6, bandwidth_down=225e6)

LAN = LinkSpec(rtt=0.0002, bandwidth_up=1.2e9, bandwidth_down=1.2e9)


class Link:
    """A bidirectional link charging transfer time to a shared clock.

    With ``spec.jitter > 0``, a seeded RNG perturbs the propagation delay
    of every message — reproducible noise for CI-style reporting.
    """

    def __init__(self, clock: SimClock, spec: LinkSpec, seed: int = 0) -> None:
        self.clock = clock
        self.spec = spec
        self.bytes_up = 0
        self.bytes_down = 0
        self.messages = 0
        self._rng = random.Random(seed) if spec.jitter > 0 else None

    def _latency(self) -> float:
        base = self.spec.one_way_latency()
        if self._rng is None:
            return base
        return max(0.0, self._rng.gauss(base, self.spec.jitter * base))

    def transfer_up(self, nbytes: int) -> None:
        """Charge a client→server message of ``nbytes``."""
        self.bytes_up += nbytes
        self.messages += 1
        self.clock.charge(
            self._latency()
            + nbytes / self.spec.bandwidth_up
            + self.spec.per_message_overhead,
            account="network",
        )

    def transfer_down(self, nbytes: int) -> None:
        """Charge a server→client message of ``nbytes``."""
        self.bytes_down += nbytes
        self.messages += 1
        self.clock.charge(
            self._latency()
            + nbytes / self.spec.bandwidth_down
            + self.spec.per_message_overhead,
            account="network",
        )

    def stream_up(self, nbytes: int) -> None:
        """Charge a client→server transfer that is part of an open stream.

        Streamed chunks after the first do not pay propagation delay again
        (the pipe is full); they pay only serialization time.  This models
        the paper's interleaved streaming (Section VI).
        """
        self.bytes_up += nbytes
        self.clock.charge(nbytes / self.spec.bandwidth_up, account="network")

    def stream_down(self, nbytes: int) -> None:
        """Server→client streamed chunk; see :meth:`stream_up`."""
        self.bytes_down += nbytes
        self.clock.charge(nbytes / self.spec.bandwidth_down, account="network")

    def delivery_copies(self) -> int:
        """How many copies of the message just charged should be delivered.

        A healthy link delivers exactly one copy.  :class:`repro.faults`'s
        ``FaultyLink`` overrides this to 0 (silent loss after the bytes
        were charged) or 2+ (duplicate delivery, as a retransmitting WAN
        can produce).  The transport consults it once per ``transfer_*``.
        """
        return 1


@dataclass
class NetworkEnv:
    """A clock plus the client↔server link — one experiment's world."""

    clock: SimClock
    link: Link

    @classmethod
    def with_spec(cls, spec: LinkSpec, seed: int = 0) -> "NetworkEnv":
        clock = SimClock()
        return cls(clock=clock, link=Link(clock, spec, seed=seed))


def azure_wan_env(jitter: float = 0.0, seed: int = 0) -> NetworkEnv:
    """The paper's Azure central-US ↔ east-US environment.

    ``jitter`` (fraction of the one-way latency, as a standard deviation)
    turns on seeded latency noise for CI-style experiments.
    """
    if jitter > 0:
        return NetworkEnv.with_spec(replace(AZURE_WAN, jitter=jitter), seed=seed)
    return NetworkEnv.with_spec(AZURE_WAN)


def lan_env() -> NetworkEnv:
    """A low-latency LAN environment for network-insensitive ablations."""
    return NetworkEnv.with_spec(LAN)

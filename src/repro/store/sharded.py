"""Deterministic N-way shard routing over untrusted backends.

The ROADMAP north star is a deployment serving millions of users, which
no single cloud bucket serves well; related systems make the same move
(IBBE-SGX partitions group metadata to keep revocation sub-linear,
Commune spreads shared state across agnostic cloud backends).  The
router is *host-side* machinery: placement must not depend on any
enclave secret, because the provider re-derives it to find an object —
so keys are placed by HMAC-SHA256 under a fixed, public placement key
(the HMAC only flattens adversarial key distributions; it hides
nothing).  The enclave's own protections (encryption, Merkle trees,
rollback guards) are what make the backends untrusted-but-safe, which is
exactly why the enclave never needs to know how many shards exist:
``StoreSet.sharded()`` yields the same interface as one backend, and the
shard-count invariance property test pins that equivalence.
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.backends import TransactionalStore, UntrustedStore

#: Fixed, public placement key.  Not a secret: it only decorrelates
#: placement from attacker-chosen key strings.
_PLACEMENT_KEY = b"segshare-shard-placement-v1"


class ShardedStore(TransactionalStore):
    """An :class:`UntrustedStore` over N backends with deterministic placement.

    Each key maps to one shard via HMAC; the mapping is stable across
    processes and independent of shard contents, so any party holding
    the (public) placement key can locate an object.  ``rename`` across
    shards degrades to copy+delete — the write-ahead journal above this
    layer is what makes multi-key operations atomic, not the router.
    """

    def __init__(self, backends: Sequence[UntrustedStore]) -> None:
        if not backends:
            raise ValueError("ShardedStore needs at least one backend")
        self._backends = tuple(backends)
        self._lock = threading.Lock()
        self._ops = [
            {"puts": 0, "gets": 0, "deletes": 0, "put_bytes": 0}
            for _ in self._backends
        ]

    def __len__(self) -> int:
        return len(self._backends)

    def shard_index(self, key: str) -> int:
        """The shard holding ``key`` — public, deterministic placement."""
        digest = hmac.new(_PLACEMENT_KEY, key.encode("utf-8"), hashlib.sha256).digest()
        return int.from_bytes(digest[:8], "big") % len(self._backends)

    def _shard(self, key: str) -> tuple[UntrustedStore, dict[str, int]]:
        index = self.shard_index(key)
        return self._backends[index], self._ops[index]

    def put(self, key: str, value: bytes) -> None:
        shard, ops = self._shard(key)
        shard.put(key, value)
        with self._lock:
            ops["puts"] += 1
            ops["put_bytes"] += len(value)

    def get(self, key: str) -> bytes:
        shard, ops = self._shard(key)
        value = shard.get(key)
        with self._lock:
            ops["gets"] += 1
        return value

    def delete(self, key: str) -> None:
        shard, ops = self._shard(key)
        shard.delete(key)
        with self._lock:
            ops["deletes"] += 1

    def exists(self, key: str) -> bool:
        shard, _ = self._shard(key)
        return shard.exists(key)

    def keys(self) -> Iterator[str]:
        for shard in self._backends:
            yield from shard.keys()

    def scan(self, prefix: str) -> Iterator[str]:
        for shard in self._backends:
            yield from shard.scan(prefix)

    def size(self, key: str) -> int:
        shard, _ = self._shard(key)
        return shard.size(key)

    def total_bytes(self) -> int:
        return sum(shard.total_bytes() for shard in self._backends)

    def rename(self, old: str, new: str) -> None:
        old_index, new_index = self.shard_index(old), self.shard_index(new)
        if old_index == new_index:
            self._backends[old_index].rename(old, new)
            return
        # Cross-shard: copy+delete.  Atomicity across shards is the
        # journal's job, one layer up.
        self.put(new, self.get(old))
        self.delete(old)

    # -- backup (§V-G): delegate to the shards ------------------------------

    def snapshot(self) -> list[Any]:
        """Per-shard snapshots, in shard order."""
        snapshots = []
        for index, shard in enumerate(self._backends):
            take = getattr(shard, "snapshot", None)
            if take is None:
                raise StorageError(f"shard {index} does not support snapshots")
            snapshots.append(take())
        return snapshots

    def restore(self, snapshots: Sequence[Any]) -> None:
        if len(snapshots) != len(self._backends):
            raise StorageError(
                f"snapshot has {len(snapshots)} shards, store has {len(self._backends)}"
            )
        for index, (shard, snap) in enumerate(zip(self._backends, snapshots)):
            restore = getattr(shard, "restore", None)
            if restore is None:
                raise StorageError(f"shard {index} does not support restore")
            restore(snap)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Per-shard op counters and object distribution."""
        with self._lock:
            ops = [dict(counters) for counters in self._ops]
        objects = [sum(1 for _ in shard.keys()) for shard in self._backends]
        return {"shards": len(self._backends), "ops": ops, "objects": objects}

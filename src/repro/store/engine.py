"""The transactional storage engine — persistence owned end-to-end.

Every paper invariant behind "a mutation is a small metadata write"
(Section IV-B's store split, Section V-E's per-batch rollback guards)
used to be re-assembled by hand at each call site: open a journal batch,
begin guard batches, discard cache entries before writes, flush guard
nodes, commit, re-anchor on abort.  The engine makes the whole protocol
one object.  A :class:`StorageEngine` is the only component that touches
untrusted state, and its :meth:`StorageEngine.transaction` span is the
only way to mutate it::

    Transaction span (engine API)
      |- write-ahead journal batch          repro.core.journal
      |- rollback-guard node/anchor batch   repro.core.rollback
      |- metadata-cache write-through       repro.core.cache
      `- DeferredStore write buffers        this module
    ProtectedFs mounts                      repro.sgx.protected_fs
      `- DeferredStore -> JournaledStore -> raw backend
                                            (InMemoryStore / DiskStore /
                                             repro.store.ShardedStore)

On commit the engine flushes each store's buffered puts as one batched
group — one simulated ocall round-trip per store instead of one per
object — under the same ``clock.exclusive("journal-commit")`` critical
section that already serializes the anchor and commit-marker writes.  On
abort the buffers are discarded, the undo log restores pre-images, and
the cache is cleared before the guards re-anchor.  The seglint
``txn-discipline`` rule enforces at lint time what this module enforces
by construction.

This module is enclave code (``TCB_MODULES``); the host-side half of
``repro.store`` is the shard router in :mod:`repro.store.sharded`.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.journal import (
    TAG_CONTENT,
    TAG_DEDUP,
    TAG_GROUP,
    JournaledStore,
    WriteAheadJournal,
)
from repro.errors import EnclaveCrashed, ReproError, StorageError
from repro.netsim.clock import ParallelClock
from repro.storage.backends import UntrustedStore
from repro.storage.stores import StoreSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cache import MetadataCache
    from repro.core.coherence import CoherenceManager
    from repro.core.dedup import DedupStore
    from repro.core.rollback import FlatStoreGuard, RollbackGuard
    from repro.sgx.enclave import Enclave

#: Values above this are never buffered: the enclave streams large
#: content chunk-by-chunk precisely to keep memory constant, and the
#: buffer must not undo that.  4 KiB chunk ciphertexts, PFS metadata,
#: guard nodes, and ACLs all fit.
MAX_BUFFERED_VALUE = 8192

#: Total buffered bytes per store before further puts write through.
BUFFER_BUDGET = 256 * 1024


@dataclass
class TransactionStats:
    """Counters over the engine's transaction lifecycle."""

    commits: int = 0
    aborts: int = 0
    puts: int = 0  # store-level puts issued inside transactions
    flush_groups: int = 0  # non-empty buffered groups applied at commits
    flushed_ops: int = 0  # buffered ops those groups carried
    last_commit_puts: int = 0
    last_flush_ops: int = 0
    bypass_writes: int = 0  # oversize/over-budget writes applied immediately
    write_backs: int = 0  # cache entries applied at commit
    pending_bytes_peak: int = 0  # high-water mark of one store's buffer

    def snapshot(self) -> dict:
        return asdict(self)


@dataclass
class GroupCommitStats:
    """Counters over the group-commit coordinator's epoch lifecycle."""

    epochs: int = 0  # epochs closed
    members_total: int = 0  # member transactions committed inside epochs
    max_members: int = 0  # largest epoch seen
    marker_writes_saved: int = 0  # vs one marker persist per transaction
    anchor_writes_saved: int = 0  # vs one anchor write per guard per txn
    counter_increments_saved: int = 0  # vs one increment per guard per txn

    def __post_init__(self) -> None:
        #: str(members) -> count of epochs that closed at that size.
        self.histogram: dict[str, int] = {}
        #: close reason ("window" / "cap" / "quiesce") -> count.
        self.closes: dict[str, int] = {}

    def snapshot(self) -> dict:
        out = asdict(self)
        out["histogram"] = dict(self.histogram)
        out["closes"] = dict(self.closes)
        return out


class GroupCommitCoordinator:
    """Bookkeeping for one open commit epoch (enclave memory only).

    ``release`` is the virtual time the last member finished committing:
    a transaction that *begins* before it overlapped an in-flight member
    and joins the epoch; one that begins after it found the pipeline
    drained, so the epoch closes first (group commit never delays a lone
    writer waiting for company — on a serial timeline every transaction
    begins after the previous one's release and K stays 1).
    """

    #: Epochs close at this many members even under continuous overlap, so
    #: an unbounded write burst cannot defer the guard flush forever.
    MAX_MEMBERS = 32

    def __init__(self) -> None:
        self.stats = GroupCommitStats()
        self.open = False
        self.release = 0.0
        self.members = 0
        #: True while a member transaction span is executing; transactions
        #: started inside it are nested and must join it, not the epoch.
        self.in_member = False


class DeferredStore(UntrustedStore):
    """Write-buffering store view, armed for the span of one transaction.

    While armed, puts and deletes land in an ordered in-enclave overlay
    (EPC-charged) and reads consult the overlay first; ``flush()``
    applies the whole overlay to the inner store as one group.  Unarmed,
    every operation passes straight through.

    The class owns its own ocall accounting (``owns_ocall_accounting``
    makes :class:`~repro.sgx.protected_fs.ProtectedFs` skip its per-call
    charge): unarmed operations cost one round-trip each, exactly like
    the un-deferred stack did, while an armed flush charges one
    round-trip for the entire group — the batching the transaction pays
    for.
    """

    owns_ocall_accounting = True

    def __init__(
        self,
        inner: UntrustedStore,
        enclave: "Enclave | None" = None,
        stats: TransactionStats | None = None,
        max_value_bytes: int = MAX_BUFFERED_VALUE,
        buffer_bytes: int = BUFFER_BUDGET,
    ) -> None:
        self.inner = inner
        self._enclave = enclave
        self._stats = stats
        self._max_value = max_value_bytes
        self._budget = buffer_bytes
        self._armed = False
        #: key -> value, or None for a buffered delete (tombstone).
        self._pending: "OrderedDict[str, bytes | None]" = OrderedDict()
        self._pending_bytes = 0

    # -- accounting ----------------------------------------------------------

    def _charge(self) -> None:
        if self._enclave is not None:
            self._enclave.ocall(account="pfs-io")

    def _entry_bytes(self, key: str) -> int:
        value = self._pending.get(key)
        return len(value) if value is not None else 0

    def _set_pending(self, key: str, value: bytes | None) -> None:
        delta = (len(value) if value is not None else 0) - self._entry_bytes(key)
        self._pending.pop(key, None)
        self._pending[key] = value
        self._account(delta)

    def _drop_pending(self, key: str) -> None:
        if key in self._pending:
            self._account(-self._entry_bytes(key))
            del self._pending[key]

    def _account(self, delta: int) -> None:
        self._pending_bytes += delta
        if self._enclave is not None:
            epc = self._enclave.platform.epc
            if delta > 0:
                epc.alloc(delta)
            elif delta < 0:
                epc.free(-delta)
        if self._stats is not None and self._pending_bytes > self._stats.pending_bytes_peak:
            self._stats.pending_bytes_peak = self._pending_bytes

    # -- transaction hooks ---------------------------------------------------

    def arm(self) -> None:
        self._armed = True

    def flush(self) -> int:
        """Apply the overlay to the inner store as one group; return op count.

        A fault part-way leaves the inner store partially updated — the
        journal's pre-images (recorded by the JournaledStore underneath
        as each op lands) are what repair it, exactly as for un-deferred
        writes.
        """
        pending = self._pending
        try:
            for key, value in pending.items():
                if value is None:
                    # The key may have existed only in the overlay.
                    if self.inner.exists(key):
                        self.inner.delete(key)
                else:
                    self.inner.put(key, value)
        finally:
            self._account(-self._pending_bytes)
            self._pending = OrderedDict()
            self._armed = False
        if pending:
            self._charge()  # the whole group is one round-trip
        return len(pending)

    def discard(self) -> None:
        """Drop the overlay without applying it (transaction abort)."""
        self._account(-self._pending_bytes)
        self._pending = OrderedDict()
        self._armed = False

    # -- UntrustedStore ------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        if self._stats is not None and self._armed:
            self._stats.puts += 1
        if not self._armed:
            self.inner.put(key, value)
            self._charge()
            return
        fits = len(value) <= self._max_value and (
            self._pending_bytes - self._entry_bytes(key) + len(value) <= self._budget
        )
        if fits:
            self._set_pending(key, bytes(value))
            return
        # Oversize or over budget: write through now — the enclave never
        # buffers unbounded bytes (the constant-memory claim).  Any
        # overlay entry for the key is dropped first so it cannot shadow
        # the newer stored value.
        self._drop_pending(key)
        self.inner.put(key, value)
        self._charge()
        if self._stats is not None:
            self._stats.bypass_writes += 1

    def get(self, key: str) -> bytes:
        if self._armed and key in self._pending:
            value = self._pending[key]
            if value is None:
                raise StorageError(f"no object at key {key!r}")
            return value
        value = self.inner.get(key)
        self._charge()
        return value

    def delete(self, key: str) -> None:
        if not self._armed:
            self.inner.delete(key)
            self._charge()
            return
        if key in self._pending:
            if self._pending[key] is None:
                raise StorageError(f"no object at key {key!r}")
            self._set_pending(key, None)
            return
        if not self.inner.exists(key):
            raise StorageError(f"no object at key {key!r}")
        self._set_pending(key, None)

    def rename(self, old: str, new: str) -> None:
        if not self._armed:
            self.inner.rename(old, new)
            self._charge()
            return
        self.put(new, self.get(old))
        self.delete(old)

    def exists(self, key: str) -> bool:
        if self._armed and key in self._pending:
            return self._pending[key] is not None
        return self.inner.exists(key)

    def keys(self) -> Iterator[str]:
        if not self._armed or not self._pending:
            return self.inner.keys()
        merged = set(self.inner.keys())
        for key, value in self._pending.items():
            if value is None:
                merged.discard(key)
            else:
                merged.add(key)
        return iter(merged)

    def scan(self, prefix: str) -> Iterator[str]:
        if not self._armed or not self._pending:
            return self.inner.scan(prefix)
        merged = set(self.inner.scan(prefix))
        for key, value in self._pending.items():
            if not key.startswith(prefix):
                continue
            if value is None:
                merged.discard(key)
            else:
                merged.add(key)
        return iter(merged)

    def size(self, key: str) -> int:
        if self._armed and key in self._pending:
            value = self._pending[key]
            if value is None:
                raise StorageError(f"no object at key {key!r}")
            return len(value)
        return self.inner.size(key)

    def total_bytes(self) -> int:
        if not self._armed or not self._pending:
            return self.inner.total_bytes()
        return sum(self.size(key) for key in self.keys())


class StorageEngine:
    """Owns the journal, guards, cache, and deferred stores of one enclave.

    ``backends`` is what the ProtectedFs mounts sit on: with a journal,
    each store is wrapped ``DeferredStore -> JournaledStore -> raw``;
    without one (the bench baseline), the raw stores pass through and
    :meth:`transaction` is free.  ``raw`` keeps the unwrapped stores for
    stats, sealed slots, and the journal's own marker/entry keys.
    """

    def __init__(
        self,
        stores: StoreSet,
        journal: WriteAheadJournal | None = None,
        cache: "MetadataCache | None" = None,
        guard_batching: bool = True,
        enclave: "Enclave | None" = None,
    ) -> None:
        self.raw = stores
        self.journal = journal
        self.cache = cache
        self._enclave = enclave
        self._guard_batching = guard_batching and journal is not None
        self.guard: "RollbackGuard | None" = None
        self.group_guard: "FlatStoreGuard | None" = None
        self.dedup: "DedupStore | None" = None
        self.stats = TransactionStats()
        #: Group-commit coordinator; installed by :meth:`enable_group_commit`
        #: once the guards are wired (``None`` keeps the serial commit path
        #: byte-for-byte untouched).
        self.group_commit: GroupCommitCoordinator | None = None
        #: Cluster request token to persist with the next transaction.
        #: Set via the ``cluster_begin_request`` ECALL before a routed
        #: request runs; the transaction writes the sealed stamp through
        #: the journaled stack so "this request committed" becomes part
        #: of the batch's atomicity.  ``None`` (the default everywhere
        #: outside cluster mode) adds zero writes and zero cost.
        self.pending_stamp: str | None = None
        #: Cross-replica invalidation publisher; installed by
        #: :meth:`attach_coherence` in cluster deployments (``None``
        #: keeps single-enclave paths byte-for-byte untouched).
        self.coherence: "CoherenceManager | None" = None
        #: (namespace, key) pairs the open transaction touched; published
        #: to the coherence log at commit so peer replicas drop exactly
        #: these cache entries.  Shares the lifecycle (and therefore the
        #: thread-safety argument) of ``_write_backs``.
        self._txn_touched: "set[tuple[str, str]]" = set()
        #: Union of the open epoch's committed members' touched sets;
        #: published once at epoch close, amortized like the anchor write.
        self._epoch_touched: "set[tuple[str, str]]" = set()
        #: (namespace, key) -> value; deferred cache write-through,
        #: last write per key wins.
        self._write_backs: "OrderedDict[tuple[str, str], bytes]" = OrderedDict()
        if journal is not None and cache is not None:
            # Belt and braces: ANY undo-log restore — including recovery
            # paths that bypass transaction() — drops the cache before
            # restored bytes can coexist with stale entries.
            journal.on_restore = cache.clear
        self._deferred: tuple[DeferredStore, ...] = ()
        if journal is not None:
            self._deferred = tuple(
                DeferredStore(
                    JournaledStore(store, journal, tag), enclave=enclave, stats=self.stats
                )
                for store, tag in (
                    (stores.content, TAG_CONTENT),
                    (stores.group, TAG_GROUP),
                    (stores.dedup, TAG_DEDUP),
                )
            )
            self.backends = StoreSet(*self._deferred)
        else:
            self.backends = stores

    def attach_dedup(self, dedup: "DedupStore | None") -> None:
        """The dedup index must be re-read after an undo-log restore."""
        self.dedup = dedup

    def attach_coherence(self, coherence: "CoherenceManager | None") -> None:
        """Join the cluster's invalidation log (see :mod:`repro.core.coherence`).

        From here on every commit publishes its touched-key set and every
        cache read syncs against the shared epoch counter first.
        """
        self.coherence = coherence

    def discard_pending_state(self) -> None:
        """Drop deferred write-backs and captured keys (recovery epilogue).

        Takeover recovery re-anchors through the raw-write path, which
        defers cache write-backs; applying them later — after the router
        may already have handed traffic to a peer — could resurrect a
        value the coherence protocol has invalidated.  Discarding is
        always safe: the next read re-verifies from storage.
        """
        self._write_backs.clear()
        self._txn_touched.clear()
        self._epoch_touched.clear()

    def coherence_check(self) -> None:
        """Apply pending peer invalidations before trusting derived state.

        The dedup index calls this on every hit: the index object lives
        in enclave memory, so "verify on hit" means proving no peer epoch
        has invalidated it since we last looked.
        """
        if self.coherence is not None:
            self.coherence.sync()

    def enable_group_commit(self) -> None:
        """Let overlapping transactions share one journal-commit epoch.

        Only meaningful on a parallel clock (a serial timeline never
        overlaps, so every epoch would close at K=1 having paid the epoch
        bookkeeping for nothing — the serial model stays bit-identical by
        not installing the coordinator at all) and only correct with guard
        batching (the epoch defers the guards' node/anchor flush to its
        close).
        """
        if self.journal is None or self._enclave is None:
            return
        clock = self._enclave.platform.clock
        if not isinstance(clock, ParallelClock):
            return
        if (self.guard is not None or self.group_guard is not None) and not self._guard_batching:
            return
        self.group_commit = GroupCommitCoordinator()

    def quiesce(self) -> None:
        """Close any open epoch (bench boundaries, cluster hand-offs)."""
        group = self.group_commit
        if group is not None and group.open:
            self._close_epoch("quiesce")

    # -- the transaction span ------------------------------------------------

    @contextlib.contextmanager
    def transaction(self, label: str) -> Iterator[None]:
        """Run a multi-key mutation as one all-or-nothing unit.

        Without a journal this is free.  With one, the span carries the
        undo-journal batch, the guard node/anchor batches, the deferred
        write buffers, and the cache write-backs: a crash inside it is
        rolled back on restart; a non-crash failure is rolled back
        immediately (pre-images restored, cache cleared, guards
        re-anchored).  Nested transactions join the outer one.
        """
        journal = self.journal
        if journal is None:
            yield
            return
        group = self.group_commit
        if group is not None:
            if group.in_member or (journal.active and not group.open):
                # Nested inside an epoch member — or the journal is active
                # without an epoch of ours, i.e. crash recovery restored an
                # epoch and kept recording open (takeover): join it as a
                # plain span so recovery writes stay journaled until
                # recover_finish, instead of opening a second epoch over it.
                yield
                return
            with self._group_member(label):
                yield
            return
        if journal.active:
            yield
            return
        if self.coherence is not None:
            # Start from a synced view: peer epochs applied before our
            # reads, so the span never builds writes over stale cache.
            self.coherence.sync()
        journal.begin(label)
        self._begin_guard_batches()
        for store in self._deferred:
            store.arm()
        stamp, self.pending_stamp = self.pending_stamp, None
        if stamp is not None:
            # Buffered like any other write: the pre-image is journaled at
            # flush, so an abort (or crash) restores the *previous*
            # request's stamp and a commit publishes this one atomically
            # with the batch.
            key, sealed = journal.seal_stamp(stamp)
            self.backends.content.put(key, sealed)
        puts_before = self.stats.puts
        try:
            yield
            # Commit inside the try: a fault while persisting the batched
            # guard nodes or flushing the buffers rolls the whole
            # transaction back like any other fault.  Guard batches commit
            # first so their node/anchor writes join the buffered group.
            with self._commit_point():
                self._commit_guard_batches()
                self._flush_deferred()
        except EnclaveCrashed:
            # The enclave is gone; restart recovery replays the undo log.
            raise
        except BaseException:
            self._abort_guard_batches()
            for store in self._deferred:
                store.discard()
            self._write_backs.clear()
            # An abort restores the shared store to its pre-transaction
            # bytes, so peers' caches are still correct: nothing to
            # publish.
            self._txn_touched.clear()
            try:
                journal.rollback()
                # Re-anchor under the journal's recording: the anchor is a
                # multi-key protected file, and a crash tearing its rewrite
                # must rewind to the restored state on restart.
                journal.resume_recording()
                self._reanchor_guards()
                journal.clear()
                # The re-anchor deferred its anchor/node write-backs
                # (the journal was recording); apply them before leaving
                # the span so none survives to be applied stale later.
                self._apply_write_backs()
            except EnclaveCrashed:
                raise
            except ReproError as rollback_exc:
                # State may be inconsistent; refuse further mutations until
                # a restart re-runs the (still persisted) undo log.
                journal.poison(
                    f"rollback of transaction {label!r} failed: {rollback_exc}"
                )
            self.stats.aborts += 1
            raise
        else:
            with self._commit_point():
                journal.commit()
            self._apply_write_backs()
            self._publish_coherence(label)
            self.stats.commits += 1
            self.stats.last_commit_puts = self.stats.puts - puts_before

    # -- group commit ---------------------------------------------------------

    @contextlib.contextmanager
    def _group_member(self, label: str) -> Iterator[None]:
        """One member transaction inside a (possibly shared) commit epoch.

        The member's atomic commit point is a single epoch-record put
        (:meth:`WriteAheadJournal.commit_member`); the marker persist,
        batched guard-node flush, anchor write, and monotonic-counter
        increment are all paid once per *epoch*, at close.  Each member
        still records its own undo pre-images, so aborting one rolls back
        exactly its writes while earlier members' commits stand.
        """
        journal = self.journal
        group = self.group_commit
        clock = self._enclave.platform.clock
        assert journal is not None and group is not None and clock is not None
        if self.coherence is not None:
            self.coherence.sync()
        now = clock.now()
        if group.open and (now > group.release or group.members >= group.MAX_MEMBERS):
            # This transaction did not overlap the last member (or the
            # epoch is full): flush the epoch's deferred guard state
            # first.  The close runs as background work anchored at the
            # last member's release; the opener below rendezvouses on
            # "journal-commit" and so waits for it — honest commit-wait.
            self._close_epoch("window" if now > group.release else "cap")
        if not group.open:
            with self._commit_point():
                journal.open_epoch(label)
            self._begin_guard_batches()
            group.open = True
            group.members = 0
            group.release = clock.now()
        member_base = journal.begin_member()
        snap_fs = self.guard.snapshot_pending() if self.guard is not None else None
        snap_group = (
            self.group_guard.snapshot_pending() if self.group_guard is not None else None
        )
        for store in self._deferred:
            store.arm()
        stamp, self.pending_stamp = self.pending_stamp, None
        if stamp is not None:
            # Buffered and flushed with *this member's* group: the stamp
            # becomes durable at the member's commit record, so a cluster
            # successor sees it even though the epoch is still open.
            key, sealed = journal.seal_stamp(stamp)
            self.backends.content.put(key, sealed)
        puts_before = self.stats.puts
        group.in_member = True
        try:
            yield
            with self._commit_point():
                self._flush_deferred()
                journal.commit_member(
                    member_base,
                    self.guard.expected_main() if self.guard is not None else b"",
                    self.group_guard.expected_main()
                    if self.group_guard is not None
                    else b"",
                    group.members + 1,
                    label,
                )
        except EnclaveCrashed:
            raise
        except BaseException:
            for store in self._deferred:
                store.discard()
            self._write_backs.clear()
            self._txn_touched.clear()
            if self.guard is not None and snap_fs is not None:
                self.guard.restore_pending(snap_fs)
            if self.group_guard is not None and snap_group is not None:
                self.group_guard.restore_pending(snap_group)
            try:
                # No anchor was written and no counter incremented since
                # this member began (both are deferred to epoch close), so
                # restoring the pre-images is the whole rollback: no
                # re-anchor, and the epoch stays open for other members.
                journal.rollback_member(member_base)
            except EnclaveCrashed:
                raise
            except ReproError as rollback_exc:
                journal.poison(
                    f"rollback of transaction {label!r} failed: {rollback_exc}"
                )
            self.stats.aborts += 1
            raise
        else:
            group.release = clock.now()
            group.members += 1
            group.stats.members_total += 1
            self._apply_write_backs()
            if self.coherence is not None:
                # Committed members pool their touched keys; the epoch
                # close publishes them as one entry.
                self._epoch_touched |= self._txn_touched
                self._txn_touched = set()
            self.stats.commits += 1
            self.stats.last_commit_puts = self.stats.puts - puts_before
        finally:
            group.in_member = False

    def _close_epoch(self, reason: str) -> None:
        """Flush the epoch's deferred guard state and drop the marker.

        One batched guard-node flush, one anchor write (plus counter
        increment) per guard, one marker delete — amortized over every
        member the epoch carried.  The work runs on a background track
        starting at the last member's release: no request waits on it
        directly, but the next epoch's opener meets it at the
        "journal-commit" rendezvous and the makespan includes it.
        """
        journal = self.journal
        group = self.group_commit
        clock = self._enclave.platform.clock
        assert journal is not None and group is not None and clock is not None
        bg = clock.open_track("group-commit-close", start=group.release)
        try:
            with self._commit_point():
                self._commit_guard_batches()
                journal.close_epoch()
                # The guard flush above raw-wrote nodes and the anchor
                # while the journal was still recording, deferring their
                # cache write-backs.  Apply them NOW: a write-back that
                # survives past the close could be applied after a peer
                # overwrote the key (the router hands traffic over right
                # after a quiesce), inserting a stale value the sync
                # protocol has already invalidated.
                self._apply_write_backs()
                # Publish once per epoch, inside the same serialized
                # close: peers learn every committed member's touched
                # keys in one entry.  A crash here leaves the epoch
                # committed but unpublished — healed by the takeover
                # reset (see cluster_takeover_recover).
                self._publish_coherence("epoch")
        finally:
            clock.close_track(bg, join=False)
        group.open = False
        stats = group.stats
        members = group.members
        stats.epochs += 1
        stats.histogram[str(members)] = stats.histogram.get(str(members), 0) + 1
        stats.closes[reason] = stats.closes.get(reason, 0) + 1
        if members > stats.max_members:
            stats.max_members = members
        if members > 1:
            saved = members - 1
            guards = (self.guard is not None) + (self.group_guard is not None)
            stats.marker_writes_saved += saved
            stats.anchor_writes_saved += saved * guards
            stats.counter_increments_saved += saved * guards

    def _commit_point(self) -> "contextlib.AbstractContextManager[None]":
        """The journal's commit record is one serial resource.

        Committing the batched guard nodes, flushing the write buffers
        (with their counter-incrementing anchor), and persisting the
        commit marker form the transaction's critical section: concurrent
        requests rendezvous here, so on a parallel clock overlapping
        writers pay each other's commit latency while readers stay
        unaffected.  On a serial clock this is a no-op.
        """
        if self._enclave is None or self._enclave.platform.clock is None:
            return contextlib.nullcontext()
        return self._enclave.platform.clock.exclusive(
            "journal-commit", account="commit-wait"
        )

    def _begin_guard_batches(self) -> None:
        """Defer guard node/anchor persistence until the transaction commits.

        Only safe under an open undo-journal batch: an abort rolls back
        the data writes the pending nodes describe, so dropping them is
        consistent.  Disabled entirely with ``guard_batching=False`` (the
        benchmark baseline).
        """
        if not self._guard_batching:
            return
        if self.guard is not None:
            self.guard.begin_batch()
        if self.group_guard is not None:
            self.group_guard.begin_batch()

    def _commit_guard_batches(self) -> None:
        if self.guard is not None:
            self.guard.commit_batch()
        if self.group_guard is not None:
            self.group_guard.commit_batch()

    def _abort_guard_batches(self) -> None:
        if self.guard is not None:
            self.guard.abort_batch()
        if self.group_guard is not None:
            self.group_guard.abort_batch()

    def _reanchor_guards(self) -> None:
        """Resync in-memory state after an undo-log restore.

        The restore brought back the pre-batch anchors byte-for-byte, but
        the monotonic counter kept the increments the aborted transaction
        made — the anchors must be rewritten against the current counter
        value.  The dedup index cache likewise still holds the aborted
        transaction's refcounts and must follow the restored bytes.

        Ordering matters: pending guard batches are dropped and the
        metadata cache cleared FIRST — re-anchoring reads storage, and a
        stale cached entry must never feed the new anchor.
        """
        self._abort_guard_batches()
        if self.cache is not None:
            self.cache.clear()
        if self.dedup is not None:
            self.dedup.reload_index()
        if self.guard is not None:
            self.guard.accept_current_state()
        if self.group_guard is not None:
            self.group_guard.accept_current_state()

    def _flush_deferred(self) -> None:
        total = 0
        for store in self._deferred:
            ops = store.flush()
            if ops:
                self.stats.flush_groups += 1
                self.stats.flushed_ops += ops
            total += ops
        self.stats.last_flush_ops = total

    def _apply_write_backs(self) -> None:
        if not self._write_backs:
            return
        pending, self._write_backs = self._write_backs, OrderedDict()
        if self.cache is not None:
            self.cache.apply(
                (namespace, key, value)
                for (namespace, key), value in pending.items()
            )
            self.stats.write_backs += len(pending)

    def _publish_coherence(self, label: str) -> None:
        """Publish the pending touched-key set as one coherence entry.

        Serial commits publish their own transaction's set; an epoch
        close publishes the union its members pooled.  Runs strictly
        after the journal commit — the entry describes only durable
        state — and is skipped entirely when nothing was touched.  The
        crashpoint models the one new crash window the protocol adds:
        committed but unpublished, which takeover recovery heals with an
        authenticated reset entry.
        """
        if self.coherence is None:
            return
        touched = self._txn_touched | self._epoch_touched
        self._txn_touched = set()
        self._epoch_touched = set()
        if not touched:
            return
        assert self.journal is not None
        self.journal.crashpoint("coherence:publish")
        self.coherence.publish(touched, label)

    # -- cache facade --------------------------------------------------------
    #
    # Callers never talk to the MetadataCache directly: reads go through
    # lookup/cached/fill, writers pair invalidate (before the store
    # mutation) with write_back (after it).  Inside a transaction the
    # write-through is deferred to commit; an abort clears the whole cache
    # via journal.on_restore, so read-path fills stay safe mid-span.

    def lookup(self, namespace: str, key: str) -> bytes | None:
        if self.cache is None:
            return None
        if self.coherence is not None:
            # Epoch check before every cache serve: one untrusted int
            # compare on the fast path; apply-or-discard on lag.
            self.coherence.sync()
        return self.cache.get(namespace, key)

    def cached(self, namespace: str, key: str) -> bool:
        if self.cache is None:
            return False
        if self.coherence is not None:
            self.coherence.sync()
        return self.cache.contains(namespace, key)

    def fill(self, namespace: str, key: str, value: bytes) -> None:
        """Read-path insertion of a just-verified value."""
        if self.cache is not None:
            self.cache.put(namespace, key, value)

    def invalidate(self, namespace: str, key: str) -> None:
        """Drop the entry before mutating: if the write or guard update
        faults part-way, the cache must not keep serving the old value
        over now-divergent storage.  A deferred write-back for the key is
        dropped too — a write-then-delete inside one transaction must not
        resurrect the entry at commit."""
        self._write_backs.pop((namespace, key), None)
        self._touch_coherence(namespace, key)
        if self.cache is not None:
            self.cache.discard(namespace, key)

    def write_back(self, namespace: str, key: str, value: bytes) -> None:
        """Write-through of a value just persisted by the caller.

        Deferred to commit while a transaction is open (the store write
        it mirrors is itself buffered); immediate otherwise.
        """
        self._touch_coherence(namespace, key)
        if self.cache is None:
            return
        if self.journal is not None and self.journal.active:
            self._write_backs.pop((namespace, key), None)
            self._write_backs[(namespace, key)] = value
        else:
            self.cache.put(namespace, key, value)

    def _touch_coherence(self, namespace: str, key: str) -> None:
        """Record a key the open transaction is mutating.

        Every cached-key mutation in the code base pairs ``invalidate``
        (before the store write) with ``write_back`` (after it), so
        capturing here makes the published invalidation set complete by
        construction.  Mutations outside a journal batch (recovery,
        index re-reads triggered by a sync) are not captured: they do
        not change committed shared state from a peer's point of view.
        """
        if (
            self.coherence is not None
            and self.journal is not None
            and self.journal.active
        ):
            self._txn_touched.add((namespace, key))

"""repro.store — sharded multi-backend routing and the storage engine.

The host-visible half is :class:`ShardedStore`, an
:class:`~repro.storage.backends.UntrustedStore` that spreads objects over
N backends with deterministic placement.  The trusted half — the
transactional :class:`~repro.store.engine.StorageEngine` — lives in
:mod:`repro.store.engine` and is imported by enclave code only (it is
part of the measured TCB; see ``analysis/boundary.toml``).
"""

from repro.store.sharded import ShardedStore

__all__ = ["ShardedStore"]

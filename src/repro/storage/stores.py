"""SeGShare's store layout: content, group, and deduplication stores.

Section IV-B separates files into a *content store* (content files,
directory files, and their ACLs) and a *group store* (the group list and
per-user member lists); Section V-A adds the *deduplication store*.  The
separation "adds an extra layer of security and improves performance as
file, directory, and permission operations are independent of group
operations" — here it is realized as three key prefixes over one
untrusted backend, each of which can also be given its own backend (the
replication setup does that with a shared central repository), or spread
across N backends through :class:`repro.store.ShardedStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.storage.backends import InMemoryStore, UntrustedStore


class PrefixedStore(UntrustedStore):
    """A namespaced view of another store."""

    def __init__(self, inner: UntrustedStore, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def _k(self, key: str) -> str:
        return self._prefix + key

    def put(self, key: str, value: bytes) -> None:
        self._inner.put(self._k(key), value)

    def get(self, key: str) -> bytes:
        return self._inner.get(self._k(key))

    def delete(self, key: str) -> None:
        self._inner.delete(self._k(key))

    def exists(self, key: str) -> bool:
        return self._inner.exists(self._k(key))

    def keys(self) -> Iterator[str]:
        # scan() lets an indexed backend answer from its key index instead
        # of filtering every other namespace's keys through this view.
        for key in self._inner.scan(self._prefix):
            yield key[len(self._prefix) :]

    def scan(self, prefix: str) -> Iterator[str]:
        for key in self._inner.scan(self._prefix + prefix):
            yield key[len(self._prefix) :]

    def size(self, key: str) -> int:
        return self._inner.size(self._k(key))

    def rename(self, old: str, new: str) -> None:
        self._inner.rename(self._k(old), self._k(new))


@dataclass
class StoreSet:
    """The three stores a SeGShare deployment uses.

    ``router`` is set when all three are views over one shared physical
    store (a central repository or a shard fan-out); backup and stats
    code then addresses that store once instead of per member.
    """

    content: UntrustedStore
    group: UntrustedStore
    dedup: UntrustedStore
    router: UntrustedStore | None = field(default=None, compare=False)

    @classmethod
    def in_memory(cls) -> "StoreSet":
        """Three independent in-memory stores."""
        return cls(content=InMemoryStore(), group=InMemoryStore(), dedup=InMemoryStore())

    @classmethod
    def over(cls, backend: UntrustedStore) -> "StoreSet":
        """Three prefixed views over one shared backend (central repository)."""
        return cls(
            content=PrefixedStore(backend, "content/"),
            group=PrefixedStore(backend, "group/"),
            dedup=PrefixedStore(backend, "dedup/"),
            router=backend,
        )

    @classmethod
    def sharded(cls, backends: Sequence[UntrustedStore]) -> "StoreSet":
        """Three prefixed views over an N-way shard router."""
        from repro.store import ShardedStore

        return cls.over(ShardedStore(backends))

"""Untrusted storage: key-value backends and SeGShare's three stores."""

from repro.storage.backends import DiskStore, InMemoryStore, UntrustedStore
from repro.storage.stores import StoreSet

__all__ = ["DiskStore", "InMemoryStore", "StoreSet", "UntrustedStore"]

"""Untrusted key-value storage backends.

Everything the enclave persists goes through this interface — it is the
"untrusted memory" of the paper.  Objects are opaque byte strings under
string keys; the backend gives no confidentiality, integrity, or freshness
guarantees whatsoever (tests exercise exactly those attacks by mutating
the backend directly).

Two implementations:

* :class:`InMemoryStore` — a dict; the default for tests and benchmarks.
* :class:`DiskStore` — a directory of files, for the examples that persist
  a share across process runs.

:class:`repro.store.ShardedStore` adds a deterministic N-way router over
several of these for multi-backend deployments.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import tempfile
import threading
from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.errors import StorageError


class UntrustedStore(ABC):
    """Abstract untrusted object store."""

    @abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Create or overwrite the object at ``key``."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the object at ``key``; raise :class:`StorageError` if absent."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove the object at ``key``; raise :class:`StorageError` if absent."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """True if an object exists at ``key``."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over all keys (order unspecified)."""

    @abstractmethod
    def size(self, key: str) -> int:
        """Stored size in bytes of the object at ``key``."""

    def scan(self, prefix: str) -> Iterator[str]:
        """Iterate over the keys starting with ``prefix``.

        The default filters :meth:`keys`; backends with an index override
        it so namespaced views (:class:`~repro.storage.stores.PrefixedStore`,
        the shard router) don't pay a full scan per prefix.
        """
        return (key for key in self.keys() if key.startswith(prefix))

    def total_bytes(self) -> int:
        """Total stored bytes across all objects (for storage-overhead benches)."""
        return sum(self.size(key) for key in self.keys())

    def rename(self, old: str, new: str) -> None:
        """Move an object; default implementation is copy+delete."""
        self.put(new, self.get(old))
        self.delete(old)


class TransactionalStore(UntrustedStore):
    """An :class:`UntrustedStore` that can group operations into a batch.

    ``batch()`` is a no-op hook: the base implementation provides no
    atomicity, it only marks the span a caller *wants* treated as one
    unit.  The enclave's write-ahead journal enters a ``batch()`` while
    restoring pre-images so smarter backends (a future SQL or object
    store) can make the restore itself atomic.
    """

    @contextlib.contextmanager
    def batch(self) -> Iterator[None]:
        """Group subsequent operations; no-op in the base class."""
        yield


class InMemoryStore(TransactionalStore):
    """Dict-backed store; thread-safe because the server may use worker threads."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.RLock()

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            self._objects[key] = bytes(value)

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._objects[key]
            except KeyError:
                raise StorageError(f"no object at key {key!r}") from None

    def delete(self, key: str) -> None:
        with self._lock:
            if key not in self._objects:
                raise StorageError(f"no object at key {key!r}")
            del self._objects[key]

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._objects))

    def scan(self, prefix: str) -> Iterator[str]:
        with self._lock:
            return iter([key for key in self._objects if key.startswith(prefix)])

    def size(self, key: str) -> int:
        return len(self.get(key))

    def rename(self, old: str, new: str) -> None:
        """Move an object atomically: no reader can see it half-moved."""
        with self._lock:
            if old not in self._objects:
                raise StorageError(f"no object at key {old!r}")
            self._objects[new] = self._objects.pop(old)

    def snapshot(self) -> dict[str, bytes]:
        """Copy of all objects — the cloud provider's trivial backup (§V-G)."""
        with self._lock:
            return dict(self._objects)

    def restore(self, snapshot: dict[str, bytes]) -> None:
        """Replace contents with ``snapshot`` — also how rollback attacks are staged."""
        with self._lock:
            self._objects = dict(snapshot)


class DiskStore(TransactionalStore):
    """Directory-backed store.

    Keys may contain characters that are not filesystem-safe (SeGShare
    paths contain ``/``), so each key is stored under the hex SHA-256 of
    the key with the original key recorded in a sidecar index file.  The
    sidecars are read once at construction into an in-memory key index,
    which backs :meth:`keys` and :meth:`scan` without directory walks.

    Crash consistency: ``os.replace`` makes each file write atomic, but
    the *directory entry* produced by the rename is not durable until the
    containing directory is fsynced — a power loss after the rename can
    resurface the old file contents (or lose a delete).  Every mutation
    therefore fsyncs the data before the rename and the directory after
    it.  ``crash_hook`` is called with a site name between the rename (or
    unlink) and the directory fsync, exactly the window a fault plan
    wants to die in; the hook simulates the crash by raising.

    Thread-safe like :class:`InMemoryStore`: although each individual
    file write is atomic, operations that touch the data file *and* its
    sidecar (put/delete/rename) span two syscalls — one lock keeps a
    concurrent reader from observing a data file whose sidecar is
    missing.  The lock is a leaf: nothing is acquired while holding it.
    """

    _INDEX_SUFFIX = ".key"

    def __init__(self, root: str) -> None:
        self.root = root
        self._lock = threading.RLock()
        self.crash_hook: "Callable[[str], None] | None" = None
        os.makedirs(root, exist_ok=True)
        self._keys: set[str] = set()
        for name in os.listdir(root):
            if not name.endswith(self._INDEX_SUFFIX):
                continue
            try:
                with open(os.path.join(root, name), encoding="utf-8") as fh:
                    self._keys.add(fh.read())
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                continue

    def _path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.root, digest)

    def _crashpoint(self, site: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(site)

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _write_atomic(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            self._crashpoint("diskstore:replace")
            self._fsync_dir()
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                os.remove(tmp)
            raise

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            path = self._path(key)
            self._write_atomic(path, value)
            self._write_atomic(path + self._INDEX_SUFFIX, key.encode("utf-8"))
            self._keys.add(key)

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                with open(self._path(key), "rb") as fh:
                    return fh.read()
            except FileNotFoundError:
                raise StorageError(f"no object at key {key!r}") from None

    def delete(self, key: str) -> None:
        with self._lock:
            path = self._path(key)
            try:
                os.remove(path)
            except FileNotFoundError:
                raise StorageError(f"no object at key {key!r}") from None
            try:
                os.remove(path + self._INDEX_SUFFIX)
            except FileNotFoundError:
                pass
            self._keys.discard(key)
            self._crashpoint("diskstore:delete")
            self._fsync_dir()

    def exists(self, key: str) -> bool:
        with self._lock:
            return os.path.exists(self._path(key))

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._keys))

    def scan(self, prefix: str) -> Iterator[str]:
        with self._lock:
            return iter([key for key in self._keys if key.startswith(prefix)])

    def size(self, key: str) -> int:
        with self._lock:
            try:
                return os.path.getsize(self._path(key))
            except FileNotFoundError:
                raise StorageError(f"no object at key {key!r}") from None

    def rename(self, old: str, new: str) -> None:
        """Move an object with ``os.replace`` — atomic on POSIX filesystems."""
        with self._lock:
            old_path, new_path = self._path(old), self._path(new)
            try:
                os.replace(old_path, new_path)
            except FileNotFoundError:
                raise StorageError(f"no object at key {old!r}") from None
            self._crashpoint("diskstore:replace")
            self._fsync_dir()
            self._write_atomic(new_path + self._INDEX_SUFFIX, new.encode("utf-8"))
            with contextlib.suppress(FileNotFoundError):
                os.remove(old_path + self._INDEX_SUFFIX)
            self._keys.discard(old)
            self._keys.add(new)
            self._fsync_dir()

"""SeGShare reproduction: secure group file sharing using enclaves.

Package map:

* ``repro.crypto`` — primitives (PAE, sealing, key derivation).
* ``repro.sgx`` — simulated SGX platform: enclaves, sealing, counters,
  protected FS, cost model.
* ``repro.storage`` — untrusted key-value backends.
* ``repro.netsim`` — simulated network (clock, links, transport).
* ``repro.tls`` — the enclave-terminated TLS channel.
* ``repro.core`` — the SeGShare server/enclave/client themselves.
* ``repro.faults`` — deterministic fault injection: seeded
  :class:`~repro.faults.FaultPlan` schedules driving storage faults
  (``FaultyStore``), network faults (``FaultyLink``), and enclave
  crashes at operation boundaries; pairs with the write-ahead journal
  in ``repro.core.journal`` for crash-consistency testing.
"""

"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is the single source of truth for *when* failures
happen in an experiment.  Wrappers — :class:`repro.faults.FaultyStore`,
:class:`repro.faults.FaultyLink`, and :meth:`repro.sgx.enclave.SgxPlatform
.crashpoint` — report every operation to the plan, which decides whether
to inject a fault.  All randomness comes from one ``random.Random(seed)``,
so two runs of the same workload with the same seed observe byte-identical
failure sequences (``plan.events`` records them for exactly that
assertion).

Supported faults:

========================  =====================================================
``fail_nth`` / ``fail_randomly``  transient :class:`~repro.errors.FaultError`
                                  on a store operation
``torn_write``            a ``put`` silently persists only the first half
``lost_write``            a ``put`` is silently discarded
``crash_after_ops``       the enclave dies at the N-th store operation
``crash_at_point``        the enclave dies at the N-th named crashpoint
``drop_message``          a network send raises :class:`NetworkError`
``lose_message``          bytes are charged but nothing is delivered
``duplicate_message``     the message is delivered twice (or more)
``delay_message``         extra latency is charged before delivery
========================  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import EnclaveCrashed, FaultError, NetworkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sgx.enclave import SgxPlatform


@dataclass
class _Rule:
    """One injection rule; fires deterministically or probabilistically."""

    action: str
    match: Callable[..., bool]
    nth: Optional[int] = None
    probability: float = 0.0
    limit: Optional[int] = None
    param: Any = None
    seen: int = 0
    fired: int = 0

    def decide(self, rng: random.Random) -> bool:
        self.seen += 1
        if self.nth is not None:
            fire = self.seen == self.nth
        else:
            if self.limit is not None and self.fired >= self.limit:
                return False
            fire = rng.random() < self.probability
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A seeded schedule of storage, network, and crash faults.

    Construct a plan, declare rules, then hand the plan to the faulty
    wrappers (and/or :meth:`attach_platform` for crashpoints).  The plan
    keeps global operation counters and an ``events`` log of every fault
    it injected, in order — the determinism contract is that equal seeds
    and equal workloads produce equal ``events``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._store_rules: list[_Rule] = []
        self._crash_rules: list[_Rule] = []
        self._message_rules: list[_Rule] = []
        self._platforms: list["SgxPlatform"] = []
        self.store_ops = 0
        self.crashpoints = 0
        self.messages = 0
        self.events: list[tuple[Any, ...]] = []

    # -- configuration: storage ---------------------------------------------

    def fail_nth(self, nth: int, op: Optional[str] = None, store: Optional[str] = None) -> "FaultPlan":
        """Raise a transient :class:`FaultError` at the N-th matching store op."""
        self._store_rules.append(
            _Rule(action="error", nth=nth, match=_store_match(op, store))
        )
        return self

    def fail_randomly(
        self,
        probability: float,
        op: Optional[str] = None,
        store: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "FaultPlan":
        """Raise transient :class:`FaultError` s with the given per-op probability."""
        self._store_rules.append(
            _Rule(
                action="error",
                probability=probability,
                limit=limit,
                match=_store_match(op, store),
            )
        )
        return self

    def torn_write(self, nth: int, store: Optional[str] = None) -> "FaultPlan":
        """Silently persist only the first half of the N-th matching ``put``."""
        self._store_rules.append(
            _Rule(action="torn", nth=nth, match=_store_match("put", store))
        )
        return self

    def lost_write(self, nth: int, store: Optional[str] = None) -> "FaultPlan":
        """Silently discard the N-th matching ``put`` (acked but never stored)."""
        self._store_rules.append(
            _Rule(action="lost", nth=nth, match=_store_match("put", store))
        )
        return self

    def crash_after_ops(self, nth: int, store: Optional[str] = None) -> "FaultPlan":
        """Kill the enclave as the N-th matching store operation begins."""
        self._store_rules.append(
            _Rule(action="crash", nth=nth, match=_store_match(None, store))
        )
        return self

    # -- configuration: crashpoints ------------------------------------------

    def crash_at_point(self, nth: int, site_prefix: str = "") -> "FaultPlan":
        """Kill the enclave at the N-th crashpoint whose site starts with
        ``site_prefix`` (e.g. ``"journal:"`` to enumerate journal steps)."""
        self._crash_rules.append(
            _Rule(
                action="crash",
                nth=nth,
                param=site_prefix,
                match=lambda site, prefix=site_prefix: site.startswith(prefix),
            )
        )
        return self

    # -- configuration: network ----------------------------------------------

    def drop_message(
        self,
        nth: Optional[int] = None,
        probability: float = 0.0,
        direction: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "FaultPlan":
        """Fail a send with :class:`NetworkError` (the sender notices)."""
        self._message_rules.append(
            _Rule(
                action="drop",
                nth=nth,
                probability=probability,
                limit=limit,
                match=_message_match(direction),
            )
        )
        return self

    def lose_message(
        self, nth: Optional[int] = None, probability: float = 0.0, direction: Optional[str] = None
    ) -> "FaultPlan":
        """Charge the bytes but deliver nothing (silent loss in flight)."""
        self._message_rules.append(
            _Rule(
                action="lose",
                nth=nth,
                probability=probability,
                match=_message_match(direction),
            )
        )
        return self

    def duplicate_message(
        self, nth: Optional[int] = None, probability: float = 0.0,
        copies: int = 2, direction: Optional[str] = None,
    ) -> "FaultPlan":
        """Deliver ``copies`` copies of a message (WAN retransmission)."""
        self._message_rules.append(
            _Rule(
                action="dup",
                nth=nth,
                probability=probability,
                param=copies,
                match=_message_match(direction),
            )
        )
        return self

    def delay_message(
        self, seconds: float, nth: Optional[int] = None,
        probability: float = 0.0, direction: Optional[str] = None,
    ) -> "FaultPlan":
        """Charge ``seconds`` of extra latency before delivering a message."""
        self._message_rules.append(
            _Rule(
                action="delay",
                nth=nth,
                probability=probability,
                param=seconds,
                match=_message_match(direction),
            )
        )
        return self

    # -- introspection --------------------------------------------------------

    def seen_crashpoints(self, site_prefix: str = "") -> int:
        """How many crashpoints matching ``site_prefix`` this plan observed.

        The global :attr:`crashpoints` counter includes every site —
        notably the ``ecall:<name>`` sites the enclave handle fires while
        a plan is attached — so enumeration passes (run once to count,
        then crash at each ``nth`` in turn) must count through a matching
        rule, not the global counter.  Declare a ``crash_at_point`` rule
        with an unreachably large ``nth`` and read the count here.
        """
        for rule in self._crash_rules:
            if rule.param == site_prefix:
                return rule.seen
        raise ValueError(f"no crash rule with site prefix {site_prefix!r}")

    # -- wiring ---------------------------------------------------------------

    def attach_platform(self, platform: "SgxPlatform") -> "FaultPlan":
        """Install this plan as ``platform.fault_plan`` so crashpoints and
        store-op crashes can kill the enclaves loaded on it."""
        platform.fault_plan = self
        if platform not in self._platforms:
            self._platforms.append(platform)
        return self

    def detach(self) -> None:
        """Disarm the plan everywhere (used after a staged crash fires)."""
        for platform in self._platforms:
            if platform.fault_plan is self:
                platform.fault_plan = None
        self._platforms.clear()

    # -- runtime hooks (called by the faulty wrappers) ------------------------

    def on_store_op(self, store: str, op: str, key: str) -> Optional[str]:
        """Decide the fate of one store operation.

        Returns ``None`` (proceed), ``"torn"`` or ``"lost"`` (the wrapper
        mangles the put), or raises :class:`FaultError` / kills the
        enclave directly.
        """
        self.store_ops += 1
        for rule in self._store_rules:
            if not rule.match(store, op):
                continue
            if not rule.decide(self._rng):
                continue
            self.events.append((rule.action, store, op, key, self.store_ops))
            if rule.action == "error":
                raise FaultError(
                    f"injected transient fault on {op} of {key!r} "
                    f"(store op #{self.store_ops})"
                )
            if rule.action == "crash":
                self._kill(f"store-op:{self.store_ops}:{op}")
            return rule.action
        return None

    def on_crashpoint(self, site: str) -> bool:
        """True if the enclave should die at this crashpoint.

        :meth:`SgxPlatform.crashpoint` does the killing; this only decides.
        """
        self.crashpoints += 1
        for rule in self._crash_rules:
            if rule.match(site) and rule.decide(self._rng):
                self.events.append(("crash", site, self.crashpoints))
                return True
        return False

    def on_message(self, direction: str, nbytes: int) -> Optional[tuple[Any, ...]]:
        """Decide the fate of one message: ``None``, ``("lose",)``,
        ``("dup", copies)`` or ``("delay", seconds)``; raises
        :class:`NetworkError` for a detected drop."""
        self.messages += 1
        for rule in self._message_rules:
            if not rule.match(direction):
                continue
            if not rule.decide(self._rng):
                continue
            self.events.append((rule.action, direction, nbytes, self.messages))
            if rule.action == "drop":
                raise NetworkError(
                    f"injected fault: message #{self.messages} dropped ({direction})"
                )
            if rule.action == "dup":
                return ("dup", rule.param)
            if rule.action == "delay":
                return ("delay", rule.param)
            return ("lose",)
        return None

    def _kill(self, site: str) -> None:
        for platform in self._platforms:
            for handle in platform.loaded_enclaves:
                handle._enclave._destroyed = True
        raise EnclaveCrashed(f"fault injection: enclave killed at {site}")


def _store_match(op: Optional[str], store: Optional[str]) -> Callable[[str, str], bool]:
    def match(store_name: str, op_name: str) -> bool:
        return (op is None or op_name == op) and (store is None or store_name == store)

    return match


def _message_match(direction: Optional[str]) -> Callable[[str], bool]:
    def match(message_direction: str) -> bool:
        return direction is None or message_direction == direction

    return match

"""A :class:`Link` that injects network faults from a :class:`FaultPlan`.

Four behaviours, decided per message by the plan:

* **drop** — the send raises :class:`~repro.errors.NetworkError` before any
  bytes are charged; the sender notices and may retry.
* **lose** — bytes are charged but ``delivery_copies()`` answers 0: the
  message vanishes in flight (the receiver never reacts).
* **duplicate** — ``delivery_copies()`` answers 2+; the transport delivers
  the same record several times (TLS replay protection must reject it).
* **delay** — extra seconds are charged to the clock before delivery.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.netsim.clock import SimClock
from repro.netsim.network import AZURE_WAN, Link, LinkSpec, NetworkEnv


class FaultyLink(Link):
    """A link whose transfers consult a fault plan."""

    def __init__(self, clock: SimClock, spec: LinkSpec, plan: FaultPlan, seed: int = 0) -> None:
        super().__init__(clock, spec, seed=seed)
        self._plan = plan
        self._next_copies = 1

    def _consult(self, direction: str, nbytes: int) -> None:
        self._next_copies = 1
        action = self._plan.on_message(direction, nbytes)
        if action is None:
            return
        if action[0] == "lose":
            self._next_copies = 0
        elif action[0] == "dup":
            self._next_copies = int(action[1])
        elif action[0] == "delay":
            self.clock.charge(float(action[1]), account="network")

    def transfer_up(self, nbytes: int) -> None:
        self._consult("up", nbytes)
        super().transfer_up(nbytes)

    def transfer_down(self, nbytes: int) -> None:
        self._consult("down", nbytes)
        super().transfer_down(nbytes)

    def stream_up(self, nbytes: int) -> None:
        self._consult("up", nbytes)
        super().stream_up(nbytes)

    def stream_down(self, nbytes: int) -> None:
        self._consult("down", nbytes)
        super().stream_down(nbytes)

    def delivery_copies(self) -> int:
        copies = self._next_copies
        self._next_copies = 1
        return copies


def faulty_env(plan: FaultPlan, spec: LinkSpec = AZURE_WAN, seed: int = 0) -> NetworkEnv:
    """A :class:`NetworkEnv` whose link injects faults from ``plan``."""
    clock = SimClock()
    return NetworkEnv(clock=clock, link=FaultyLink(clock, spec, plan, seed=seed))

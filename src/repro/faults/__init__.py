"""Deterministic fault injection for the SeGShare reproduction.

The paper's threat model assumes an *unreliable* untrusted host: storage
can fail transiently, writes can be torn or lost, the network can drop,
duplicate or delay records, and the enclave process can die at any
instruction.  This package makes all of that injectable, on a seeded
schedule, so crash-consistency and retry logic can be tested exhaustively:

* :class:`FaultPlan` — the seeded schedule; one plan drives every wrapper
  so a single seed reproduces a whole failure scenario.
* :class:`FaultyStore` — wraps any :class:`~repro.storage.backends
  .UntrustedStore`.
* :class:`FaultyLink` / :func:`faulty_env` — a ``netsim`` link with
  drop/lose/duplicate/delay faults.
* ``plan.attach_platform(platform)`` — arms :meth:`~repro.sgx.enclave
  .SgxPlatform.crashpoint` so the enclave dies at chosen operation
  boundaries (journal steps, ECALL entries, store operations).

Everything is zero-overhead when unused: no wrapper, no cost.
"""

from __future__ import annotations

from repro.faults.link import FaultyLink, faulty_env
from repro.faults.plan import FaultPlan
from repro.faults.store import FaultyStore
from repro.storage.stores import StoreSet

__all__ = [
    "FaultPlan",
    "FaultyLink",
    "FaultyStore",
    "faulty_env",
    "faulty_stores",
]


def faulty_stores(stores: StoreSet, plan: FaultPlan) -> StoreSet:
    """Wrap all three stores of a :class:`StoreSet` with one plan.

    Store names ``"content"``, ``"group"`` and ``"dedup"`` are reported to
    the plan, so rules can target a single store.
    """
    return StoreSet(
        content=FaultyStore(stores.content, plan, name="content"),
        group=FaultyStore(stores.group, plan, name="group"),
        dedup=FaultyStore(stores.dedup, plan, name="dedup"),
    )

"""An :class:`UntrustedStore` wrapper that injects storage faults.

``FaultyStore`` reports every operation to its :class:`FaultPlan` before
delegating to the wrapped backend.  The plan may let the operation
through, raise a transient :class:`~repro.errors.FaultError`, mangle a
``put`` (torn or lost write), or kill the enclave mid-operation.  The
wrapper itself stays dumb — all policy lives in the plan, which keeps
fault sequences deterministic under a seed.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.faults.plan import FaultPlan
from repro.storage.backends import TransactionalStore, UntrustedStore


class FaultyStore(TransactionalStore):
    """Wrap ``inner`` so ``plan`` can inject faults into every operation."""

    def __init__(self, inner: UntrustedStore, plan: FaultPlan, name: str = "store") -> None:
        self.inner = inner
        self._plan = plan
        self._name = name

    def put(self, key: str, value: bytes) -> None:
        action = self._plan.on_store_op(self._name, "put", key)
        if action == "lost":
            return
        if action == "torn":
            self.inner.put(key, value[: max(1, len(value) // 2)])
            return
        self.inner.put(key, value)

    def get(self, key: str) -> bytes:
        self._plan.on_store_op(self._name, "get", key)
        return self.inner.get(key)

    def delete(self, key: str) -> None:
        self._plan.on_store_op(self._name, "delete", key)
        self.inner.delete(key)

    def exists(self, key: str) -> bool:
        self._plan.on_store_op(self._name, "exists", key)
        return self.inner.exists(key)

    def keys(self) -> Iterator[str]:
        self._plan.on_store_op(self._name, "keys", "*")
        return self.inner.keys()

    def size(self, key: str) -> int:
        self._plan.on_store_op(self._name, "size", key)
        return self.inner.size(key)

    def total_bytes(self) -> int:
        # Accounting reads bypass injection: benchmarks inspect storage
        # overhead without perturbing the fault schedule.
        return self.inner.total_bytes()

    @contextlib.contextmanager
    def batch(self) -> Iterator[None]:
        if isinstance(self.inner, TransactionalStore):
            with self.inner.batch():
                yield
        else:
            yield

"""Exception hierarchy shared across the SeGShare reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
distinguish failures of this library from programming errors.  Security
failures deliberately carry little detail: an authentication tag mismatch,
for example, reports *that* verification failed, never *why*, mirroring how
the paper's enclave returns a generic error to the untrusted host.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """Authenticated decryption or hash verification failed."""


class KeyError_(CryptoError):
    """A key was malformed, of the wrong size, or unusable."""


class CertificateError(ReproError):
    """Certificate parsing, validation, or signature verification failed."""


class EnclaveError(ReproError):
    """Base class for simulated-SGX failures."""


class EnclaveCrashed(EnclaveError):
    """The enclave was destroyed or has not been initialized."""


class SealingError(EnclaveError):
    """Sealed blob could not be unsealed (wrong enclave, CPU, or tamper)."""


class AttestationError(EnclaveError):
    """Quote verification failed or the measurement was not the expected one."""


class CounterError(EnclaveError):
    """Monotonic counter failure (worn out, unknown id, non-monotonic write)."""


class ProtectedFsError(EnclaveError):
    """Protected file system failure (integrity, handle misuse, missing file)."""


class TlsError(ReproError):
    """TLS handshake or record-layer failure."""


class NetworkError(ReproError):
    """Simulated-network failure (closed connection, unreachable peer)."""


class StorageError(ReproError):
    """Untrusted store failure (missing object, backend I/O error)."""


class FaultError(StorageError):
    """A *transient*, injected or host-side fault (see :mod:`repro.faults`).

    Subclasses :class:`StorageError` so existing handling treats it as a
    storage failure, but callers that implement retry treat ``FaultError``
    as retryable where a plain ``StorageError`` (missing object) is not.
    """


class ServiceUnavailableError(ReproError):
    """The service has degraded to read-only or cannot make progress.

    Raised when the freshness-counter quorum is unreachable or the write
    journal is poisoned: reads may still be served (without a freshness
    guarantee), but mutations are refused until the operator restores the
    quorum or restarts the enclave.
    """


class FileSystemError(ReproError):
    """File system model violation (bad path, missing parent, type clash)."""


class PathError(FileSystemError):
    """A path was syntactically invalid."""


class AccessDenied(ReproError):
    """The access control check rejected the request.

    Deliberately carries no detail about *which* relation failed; the
    enclave must not leak policy internals to unauthorized callers.
    """


class RequestError(ReproError):
    """A request was syntactically invalid or referenced a missing object."""


class QuotaExceeded(RequestError):
    """An upload would push the user past their storage quota.

    Raised *inside* the PUT_FILE transaction so the refusal aborts it:
    the sealed request stamp must only ever be committed by requests
    that answer OK, or cluster failover could synthesize success for a
    request the client saw refused.
    """


class RollbackDetected(ReproError):
    """Rollback protection detected a stale file or file system state."""


class ReplicationError(ReproError):
    """Root-key transfer or replica management failed."""


class MembershipError(ReplicationError):
    """A replica was refused admission to (or is missing from) the cluster.

    Raised *before* any key material moves: a joining replica whose
    attestation report fails verification is rejected with this error at
    the membership layer instead of failing deep inside the transfer
    protocol.
    """


class BackupError(ReproError):
    """Backup creation or restoration failed."""


class WebDavError(ReproError):
    """WebDAV front-end protocol violation."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff schedule for transient faults.

    Delays are *simulated* seconds charged to the deployment's
    :class:`~repro.netsim.clock.SimClock`, never wall-clock sleeps, so
    retries are free at test time and deterministic under a seeded RNG.

    ``delay(attempt)`` for ``attempt = 1, 2, 3, ...`` yields
    ``base_delay * multiplier ** (attempt - 1)`` capped at ``max_delay``,
    with a symmetric ``jitter`` fraction applied when an RNG is supplied.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff delay in simulated seconds before retry ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        base = self.base_delay * self.multiplier ** (attempt - 1)
        capped = min(self.max_delay, base)
        if rng is not None and self.jitter > 0:
            capped *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return capped

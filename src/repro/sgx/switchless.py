"""Switchless calls (Section II-A).

Regular ECALLs/OCALLs save and restore CPU state — expensive.  The SGX
SDK's switchless mode replaces the transition with a task written to a
shared untrusted buffer that worker threads poll.  SeGShare uses
switchless calls "for all network and file traffic".

Two entry points:

* :meth:`SwitchlessQueue.submit` runs a task synchronously on the
  caller's timeline (the legacy single-flow model), charging the cheap
  switchless cost while a worker is free and the regular transition cost
  when the pool is exhausted — the SDK's fallback behaviour.
* :meth:`SwitchlessQueue.dispatch` runs a task on its *own* parallel
  track (requires a :class:`~repro.netsim.clock.ParallelClock`): up to
  ``workers`` tasks execute concurrently, and a task arriving while the
  pool is saturated pays the regular transition cost *and* queues until
  the earliest worker frees — so the pool genuinely bounds request
  parallelism rather than merely repricing calls.

In-flight accounting reflects *actual overlap*: a task counts while its
track spans the query time, which the legacy ``concurrency()`` shim tops
up for call sites that model external load without real tracks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

from repro.netsim.clock import ParallelClock, SimClock, TrackClock
from repro.sgx.costmodel import SgxCostModel


@dataclass
class SwitchlessStats:
    submitted: int = 0
    fast: int = 0
    fallback: int = 0
    #: Tasks run on their own parallel track via :meth:`dispatch`.
    dispatched: int = 0
    #: Virtual seconds dispatched tasks spent queued for a free worker.
    worker_wait_s: float = 0.0
    #: Adaptive-pool counters: tasks picked up by a spinning worker, idle
    #: workers parked past the spin window, parked workers woken (a full
    #: transition — the pool growing back), and tasks queued behind a busy
    #: worker (handed off without a transition).
    spins: int = 0
    parks: int = 0
    wakes: int = 0
    queued: int = 0


class SwitchlessQueue:
    """A pool of untrusted (or trusted) worker threads serving calls.

    ``workers`` mirrors the SDK's ``uworkers``/``tworkers`` setting.  Use
    :meth:`submit` to run a callable as a switchless call on the current
    timeline, :meth:`dispatch` to run it on a parallel track through the
    worker pool, and :meth:`concurrency` as a context manager to model
    concurrent load at legacy call sites.
    """

    def __init__(
        self,
        clock: SimClock | None,
        costs: SgxCostModel,
        workers: int = 4,
        spin_window: float = 100e-6,
    ) -> None:
        if workers < 1:
            raise ValueError("the worker pool needs at least one worker")
        self._clock = clock
        self._costs = costs
        self.workers = workers
        #: How long an idle worker spins before parking (the SDK's
        #: retries_before_sleep, expressed in virtual time).  The live
        #: pool shrinks by parking idle workers and grows back by waking
        #: them, a wake costing a full transition.
        self.spin_window = spin_window
        self.stats = SwitchlessStats()
        #: Lazily seeded on the first dispatch: the pool spins up when
        #: service starts, not at t=0 (setup work predates traffic).
        self._primed = False
        #: Extra load injected by the :meth:`concurrency` shim.
        self._extra_load = 0
        #: Tasks currently executing (their track or submit call is open).
        self._open = 0
        #: (start, end) spans of completed dispatched tracks, for overlap
        #: queries at timestamps that fall inside already-finished tasks.
        self._spans: list[tuple[float, float]] = []
        #: Min-heap of worker release times; grows to ``workers`` entries.
        self._worker_free: list[float] = []
        #: The track of the most recent :meth:`dispatch` (schedulers read
        #: its ``end`` to learn the completion time).
        self.last_track: TrackClock | None = None

    # -- load accounting ------------------------------------------------------

    def load_at(self, timestamp: float) -> int:
        """Tasks in flight at ``timestamp``: open tasks, finished tracks
        whose span covers it, plus any :meth:`concurrency` shim load."""
        overlapping = sum(1 for start, end in self._spans if start <= timestamp < end)
        return self._extra_load + self._open + overlapping

    @property
    def in_flight(self) -> int:
        """Tasks in flight right now (at the clock's current time)."""
        return self.load_at(self._clock.now() if self._clock is not None else 0.0)

    def _prune(self, horizon: float) -> None:
        """Drop recorded spans that ended at or before ``horizon``.

        Dispatch arrivals are non-decreasing in any real driver, so spans
        older than the newest arrival can never overlap a later query.
        """
        if len(self._spans) > 4 * self.workers:
            self._spans = [span for span in self._spans if span[1] > horizon]

    # -- synchronous calls (legacy single-flow model) -------------------------

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as a switchless call on the caller's timeline."""
        self.stats.submitted += 1
        now = self._clock.now() if self._clock is not None else 0.0
        self._open += 1
        try:
            if self.load_at(now) <= self.workers:
                self.stats.fast += 1
                cost = self._costs.switchless_call
            else:
                # No free worker: the SDK falls back to a real transition.
                self.stats.fallback += 1
                cost = self._costs.ocall_transition
            if self._clock is not None:
                self._clock.charge(cost, account="transitions")
            return fn(*args, **kwargs)
        finally:
            self._open -= 1

    # -- parallel dispatch ----------------------------------------------------

    def dispatch(
        self,
        fn: Callable[..., Any],
        *args: Any,
        arrival: float | None = None,
        label: str = "request",
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` on its own track through the worker pool.

        The task's track opens at ``arrival`` (default: the clock's
        current time).  The pool is adaptive, after the SDK's switchless
        design: a worker finishing a task spins for ``spin_window``
        before parking, so a task arriving within the window is picked up
        as a cheap switchless call; one arriving later must wake a parked
        worker — a full transition.  When every live worker is busy the
        task queues for the earliest one (charged to ``worker-wait``) and
        is handed off without a transition — the worker is already
        running in the enclave.  Without a :class:`ParallelClock` this
        degrades to :meth:`submit` — the serial model stays available
        everywhere.
        """
        clock = self._clock
        if not isinstance(clock, ParallelClock):
            return self.submit(fn, *args, **kwargs)
        self.stats.submitted += 1
        self.stats.dispatched += 1
        when = clock.now() if arrival is None else arrival
        self._prune(when)
        if not self._primed:
            self._primed = True
            self._worker_free = [when] * self.workers
        # Dispatches are processed in arrival order, so every non-parked
        # worker's release time is in the heap at this point: workers idle
        # past the spin window have parked (the pool shrinking under low
        # load).
        while self._worker_free and self._worker_free[0] < when - self.spin_window:
            heapq.heappop(self._worker_free)
            self.stats.parks += 1
        track = clock.open_track(label, start=when)
        self._open += 1
        try:
            if self._worker_free and self._worker_free[0] <= when:
                # A spinning worker picks the task up immediately.
                heapq.heappop(self._worker_free)
                self.stats.fast += 1
                self.stats.spins += 1
                cost = self._costs.switchless_call
            elif len(self._worker_free) < self.workers:
                # Every live worker is busy or parked: wake a parked one.
                # Its release lands in the heap when this task completes —
                # the pool growing back under load.
                self.stats.fallback += 1
                self.stats.wakes += 1
                cost = self._costs.ocall_transition
            else:
                # All workers live but busy: queue for the earliest.  The
                # handoff needs no transition — the worker is already
                # inside the enclave.
                free = heapq.heappop(self._worker_free)
                self.stats.fast += 1
                self.stats.queued += 1
                self.stats.worker_wait_s += free - when
                clock.advance_to(free, account="worker-wait")
                cost = self._costs.switchless_call
            clock.charge(cost, account="transitions")
            return fn(*args, **kwargs)
        finally:
            self._open -= 1
            heapq.heappush(self._worker_free, track.now())
            clock.close_track(track)
            end = track.end if track.end is not None else track.now()
            self._spans.append((track.start, end))
            self.last_track = track

    # -- legacy load shim -----------------------------------------------------

    class _Concurrency:
        def __init__(self, queue: "SwitchlessQueue", n: int) -> None:
            self._queue = queue
            self._n = n

        def __enter__(self) -> None:
            self._queue._extra_load += self._n

        def __exit__(self, *exc_info: object) -> None:
            self._queue._extra_load -= self._n

    def concurrency(self, n: int) -> "_Concurrency":
        """Model ``n`` other tasks being in flight for the duration."""
        return self._Concurrency(self, n)

"""Switchless calls (Section II-A).

Regular ECALLs/OCALLs save and restore CPU state — expensive.  The SGX
SDK's switchless mode replaces the transition with a task written to a
shared untrusted buffer that worker threads poll.  SeGShare uses
switchless calls "for all network and file traffic".

The model executes tasks synchronously (the simulation is single-flow)
but charges the cheaper switchless cost per call, tracks queue statistics,
and models *worker exhaustion*: when more concurrent tasks are submitted
than workers exist, the surplus calls fall back to the regular transition
cost, which is exactly the SDK's fallback behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.netsim.clock import SimClock
from repro.sgx.costmodel import SgxCostModel


@dataclass
class SwitchlessStats:
    submitted: int = 0
    fast: int = 0
    fallback: int = 0


class SwitchlessQueue:
    """A pool of untrusted (or trusted) worker threads serving calls.

    ``workers`` mirrors the SDK's ``uworkers``/``tworkers`` setting.  Use
    :meth:`submit` to run a callable as a switchless call and
    :meth:`concurrency` as a context manager to model concurrent load.
    """

    def __init__(self, clock: SimClock | None, costs: SgxCostModel, workers: int = 4) -> None:
        self._clock = clock
        self._costs = costs
        self.workers = workers
        self._in_flight = 0
        self.stats = SwitchlessStats()

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` as a switchless call, charging the appropriate cost."""
        self.stats.submitted += 1
        self._in_flight += 1
        try:
            if self._in_flight <= self.workers:
                self.stats.fast += 1
                cost = self._costs.switchless_call
            else:
                # No free worker: the SDK falls back to a real transition.
                self.stats.fallback += 1
                cost = self._costs.ocall_transition
            if self._clock is not None:
                self._clock.charge(cost, account="transitions")
            return fn(*args, **kwargs)
        finally:
            self._in_flight -= 1

    class _Concurrency:
        def __init__(self, queue: "SwitchlessQueue", n: int) -> None:
            self._queue = queue
            self._n = n

        def __enter__(self) -> None:
            self._queue._in_flight += self._n

        def __exit__(self, *exc_info: object) -> None:
            self._queue._in_flight -= self._n

    def concurrency(self, n: int) -> "_Concurrency":
        """Model ``n`` other tasks being in flight for the duration."""
        return self._Concurrency(self, n)

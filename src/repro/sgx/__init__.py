"""Simulated Intel SGX substrate.

The paper's system runs inside an SGX enclave; this package models every
SGX facility SeGShare touches (Section II-A of the paper):

* memory isolation and the 128 MiB EPC with paging costs (:mod:`epc`),
* enclaves with measurements and an explicit ECALL interface (:mod:`enclave`),
* data sealing (:mod:`sealing`),
* local and remote attestation (:mod:`attestation`),
* monotonic counters, including a ROTE-style replicated variant
  (:mod:`counters`),
* switchless calls (:mod:`switchless`),
* the Protected File System Library (:mod:`protected_fs`).

The model enforces the *semantics* (who can call what, what unseals where,
what a quote proves) and charges the *costs* (transitions, paging,
counter increments) to the simulation clock; it does not provide real
hardware isolation, as recorded in DESIGN.md's substitution table.
"""

from repro.sgx.attestation import AttestationService, Quote, QuotingEnclave
from repro.sgx.counters import MonotonicCounter, RoteCounterService
from repro.sgx.enclave import Enclave, EnclaveHandle, SgxPlatform, ecall
from repro.sgx.epc import EpcModel
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.protected_fs import ProtectedFs
from repro.sgx.sealing import SealPolicy, seal, unseal
from repro.sgx.switchless import SwitchlessQueue

__all__ = [
    "AttestationService",
    "Enclave",
    "EnclaveHandle",
    "EpcModel",
    "MonotonicCounter",
    "ProtectedFs",
    "Quote",
    "QuotingEnclave",
    "RoteCounterService",
    "SealPolicy",
    "SgxCostModel",
    "SgxPlatform",
    "SwitchlessQueue",
    "ecall",
    "seal",
    "unseal",
]

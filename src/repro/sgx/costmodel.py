"""Cost model for the simulated SGX platform.

Each constant is the virtual-time price of one hardware event.  Values
are drawn from published measurements (SCONE [73], the switchless-calls
SDK documentation, Intel's SGX performance guidance) and from calibrating
the end-to-end figures against the paper's evaluation:

* an enclave transition (ECALL or OCALL) costs ~8 µs; a switchless call
  replaces it with a ~1 µs queue operation,
* EPC paging costs ~40 µs per 4 KiB page (encrypt + integrity + copy),
* in-enclave AES-GCM runs at AES-NI speed, ~2.8 GB/s single-core,
* an SGX monotonic-counter increment takes ~100 ms and the counter wears
  out after ~1M increments (the issues the paper cites from ROTE [63]);
  a ROTE-style replicated counter costs one LAN round trip instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SgxCostModel:
    """Virtual-time costs (seconds) of simulated SGX events."""

    ecall_transition: float = 8e-6
    ocall_transition: float = 8e-6
    switchless_call: float = 1e-6
    epc_page_swap: float = 40e-6
    page_size: int = 4096

    # In-enclave crypto throughput (bytes/second), AES-NI class.
    aead_bytes_per_second: float = 2.8e9
    hash_bytes_per_second: float = 3.2e9

    # Protected-FS read path: decryption plus Merkle verification and node
    # cache churn make reads markedly slower than writes in Intel's
    # library; calibrated against Fig. 3's 200 MB download latency.
    pfs_read_bytes_per_second: float = 350e6

    # Plain in-enclave memory copies (cache hits): DRAM-speed, but the
    # MEE still decrypts EPC lines on the way to the core.
    enclave_memcpy_bytes_per_second: float = 10e9

    # Asymmetric operations (RSA-2048 sign/verify, DH exponentiation).
    rsa_sign: float = 600e-6
    rsa_verify: float = 20e-6
    dh_exchange: float = 250e-6

    # Sealing adds key derivation on top of the AEAD.
    seal_fixed: float = 10e-6

    # SGX monotonic counters (the slow, wearing hardware kind).
    counter_increment: float = 0.100
    counter_read: float = 0.060
    counter_wear_limit: int = 1_000_000

    # ROTE-style replicated counter: one LAN quorum round trip.
    rote_increment: float = 0.0008
    rote_read: float = 0.0002

    def aead_time(self, nbytes: int) -> float:
        """Time to PAE-encrypt or -decrypt ``nbytes`` in the enclave."""
        return nbytes / self.aead_bytes_per_second

    def hash_time(self, nbytes: int) -> float:
        """Time to hash ``nbytes`` (HMAC, Merkle updates, dedup digests)."""
        return nbytes / self.hash_bytes_per_second


DEFAULT_COSTS = SgxCostModel()

"""Data sealing (Section II-A of the paper).

Enclaves are stateless across restarts; sealing lets them persist secrets
in untrusted storage.  The sealing key is derived from the platform's
fuse key plus either the enclave measurement (policy ``MRENCLAVE`` — only
the *identical* enclave unseals) or the signer identity (policy
``MRSIGNER`` — any enclave from the same vendor on the same CPU unseals).
SeGShare seals its root key SK_r and its TLS key pair under MRSIGNER so
that an upgraded enclave build can still open them, while the tests also
exercise MRENCLAVE to show the stricter policy.

A sealed blob is PAE ciphertext whose associated data binds the policy,
so truncating or re-labelling a blob fails authentication.
"""

from __future__ import annotations

import enum

from repro.crypto import default_pae, derive_key
from repro.errors import IntegrityError, SealingError
from repro.sgx.enclave import Enclave
from repro.util.serialization import Reader, Writer

_MAGIC = b"SGXSEAL1"


class SealPolicy(enum.Enum):
    """Which enclave identity the sealing key is bound to."""

    MRENCLAVE = "mrenclave"
    MRSIGNER = "mrsigner"


def _sealing_key(enclave: Enclave, policy: SealPolicy) -> bytes:
    platform = enclave.platform
    if policy is SealPolicy.MRENCLAVE:
        identity = enclave.measurement()
    else:
        identity = enclave.signer_id()
    return derive_key(
        platform.fuse_key,
        f"sgx/seal/{policy.value}",
        identity,
        length=16,
    )


def seal(enclave: Enclave, data: bytes, policy: SealPolicy = SealPolicy.MRSIGNER) -> bytes:
    """Seal ``data`` for later unsealing by an enclave matching ``policy``."""
    key = _sealing_key(enclave, policy)
    if enclave.platform.clock is not None:
        enclave.charge(
            enclave.platform.costs.seal_fixed + enclave.platform.costs.aead_time(len(data)),
            account="sealing",
        )
    blob = default_pae().encrypt(key, data, aad=_MAGIC + policy.value.encode())
    return Writer().raw(_MAGIC).str(policy.value).bytes(blob).take()


def unseal(enclave: Enclave, sealed: bytes) -> bytes:
    """Unseal a blob; raises :class:`SealingError` for the wrong enclave/CPU."""
    try:
        r = Reader(sealed)
        magic = r.raw(len(_MAGIC))
        if magic != _MAGIC:
            raise SealingError("not a sealed blob")
        policy = SealPolicy(r.str())
        blob = r.bytes()
        r.expect_end()
    except SealingError:
        raise
    except Exception as exc:
        raise SealingError(f"malformed sealed blob: {exc}") from exc

    key = _sealing_key(enclave, policy)
    if enclave.platform.clock is not None:
        enclave.charge(
            enclave.platform.costs.seal_fixed + enclave.platform.costs.aead_time(len(blob)),
            account="sealing",
        )
    try:
        return default_pae().decrypt(key, blob, aad=_MAGIC + policy.value.encode())
    except IntegrityError as exc:
        raise SealingError(
            "unsealing failed: blob was sealed by a different enclave, on a "
            "different platform, or has been tampered with"
        ) from exc

"""Remote and local attestation (Section II-A).

A quote proves to a remote verifier that a specific enclave (identified
by its measurement) runs on a genuine platform, and binds 64 bytes of
report data — conventionally the hash of a key-exchange message, which is
how attestation bootstraps a secure channel.

The model:

* each :class:`SgxPlatform` gets a :class:`QuotingEnclave` holding a
  platform attestation key (RSA here; EPID/DCAP in real SGX),
* an :class:`AttestationService` (the IAS/DCAP-cache analogue) knows the
  public keys of genuine platforms and verifies quotes,
* :func:`attested_key_exchange` runs the full dance: the enclave creates
  an ephemeral DH key, quotes its public value, and the verifier checks
  the quote before completing the exchange.  The CA uses this to provision
  server certificates; replicas use the mutual variant to transfer SK_r.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto import dh, rsa
from repro.crypto.kdf import derive_key
from repro.errors import AttestationError
from repro.sgx.enclave import Enclave, SgxPlatform
from repro.util.serialization import Reader, Writer


@dataclass(frozen=True)
class Quote:
    """An attestation quote: (platform, measurement, signer, report data)."""

    platform_id: str
    measurement: bytes
    signer_id: bytes
    report_data: bytes
    signature: bytes

    def tbs_bytes(self) -> bytes:
        return (
            Writer()
            .str(self.platform_id)
            .bytes(self.measurement)
            .bytes(self.signer_id)
            .bytes(self.report_data)
            .take()
        )

    def serialize(self) -> bytes:
        return Writer().bytes(self.tbs_bytes()).bytes(self.signature).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "Quote":
        outer = Reader(data)
        tbs = outer.bytes()
        signature = outer.bytes()
        outer.expect_end()
        r = Reader(tbs)
        platform_id = r.str()
        measurement = r.bytes()
        signer_id = r.bytes()
        report_data = r.bytes()
        r.expect_end()
        return cls(
            platform_id=platform_id,
            measurement=measurement,
            signer_id=signer_id,
            report_data=report_data,
            signature=signature,
        )


class QuotingEnclave:
    """Per-platform quote signer (the QE of real SGX).

    Only code on the same platform can obtain quotes, and only for
    enclaves actually loaded there — the model enforces this by requiring
    the :class:`Enclave` object itself, which the untrusted host does not
    hold.
    """

    def __init__(self, platform: SgxPlatform, key_bits: int = 1024) -> None:
        self._platform = platform
        self._key = rsa.generate_keypair(key_bits)

    @property
    def attestation_public_key(self) -> rsa.RsaPublicKey:
        return self._key.public_key

    def quote(self, enclave: Enclave, report_data: bytes) -> Quote:
        if enclave.platform is not self._platform:
            raise AttestationError("enclave is not loaded on this platform")
        unsigned = Quote(
            platform_id=self._platform.platform_id,
            measurement=enclave.measurement(),
            signer_id=enclave.signer_id(),
            report_data=report_data,
            signature=b"",
        )
        signature = rsa.sign(self._key, unsigned.tbs_bytes())
        return Quote(
            platform_id=unsigned.platform_id,
            measurement=unsigned.measurement,
            signer_id=unsigned.signer_id,
            report_data=unsigned.report_data,
            signature=signature,
        )


class AttestationService:
    """Verifies quotes against a registry of genuine platforms (IAS analogue)."""

    def __init__(self) -> None:
        self._platforms: dict[str, rsa.RsaPublicKey] = {}

    def register_platform(self, platform_id: str, public_key: rsa.RsaPublicKey) -> None:
        """Record a genuine platform's attestation public key."""
        self._platforms[platform_id] = public_key

    def verify(self, quote: Quote, expected_measurement: bytes | None = None) -> None:
        """Verify a quote; optionally pin the expected measurement."""
        public_key = self._platforms.get(quote.platform_id)
        if public_key is None:
            raise AttestationError(f"unknown platform {quote.platform_id!r}")
        if not rsa.verify(public_key, quote.tbs_bytes(), quote.signature):
            raise AttestationError("quote signature is invalid")
        if expected_measurement is not None and quote.measurement != expected_measurement:
            raise AttestationError(
                "measurement mismatch: enclave is not the expected build"
            )


def bind_public_value(public_value: bytes) -> bytes:
    """Report data binding a DH public value into a quote."""
    return hashlib.sha256(b"repro.attest.dh\x00" + public_value).digest()


@dataclass
class AttestedSession:
    """Result of an attested key exchange: a shared secret and the quote."""

    shared_key: bytes
    quote: Quote


def enclave_key_exchange_offer(
    enclave: Enclave, quoting_enclave: QuotingEnclave
) -> tuple[dh.DhKeyPair, Quote]:
    """Enclave side, step 1: ephemeral DH key + quote over its public value."""
    keypair = dh.generate_keypair()
    quote = quoting_enclave.quote(enclave, bind_public_value(keypair.public_bytes()))
    return keypair, quote


def verifier_key_exchange(
    service: AttestationService,
    quote: Quote,
    enclave_public: bytes,
    expected_measurement: bytes | None = None,
) -> tuple[bytes, bytes]:
    """Verifier side: check the quote, return (own_public, shared_key).

    Raises :class:`AttestationError` if the quote does not verify or does
    not bind ``enclave_public``.
    """
    service.verify(quote, expected_measurement)
    if not hmac.compare_digest(quote.report_data, bind_public_value(enclave_public)):
        raise AttestationError("quote does not bind the offered public value")
    keypair = dh.generate_keypair()
    peer = dh.public_from_bytes(enclave_public)
    secret = dh.shared_secret(keypair, peer)
    shared_key = derive_key(secret, "sgx/attested-channel", length=16)
    return keypair.public_bytes(), shared_key


def enclave_key_exchange_finish(keypair: dh.DhKeyPair, verifier_public: bytes) -> bytes:
    """Enclave side, step 2: complete the exchange with the verifier's value."""
    peer = dh.public_from_bytes(verifier_public)
    secret = dh.shared_secret(keypair, peer)
    return derive_key(secret, "sgx/attested-channel", length=16)

"""Monotonic counters: the slow hardware kind and the ROTE-style kind.

Section V-E uses TEE monotonic counters to protect the root hash of the
whole file system against rollback, and notes that SGX's own counters
"have issues: increments are slow and the counter wears out fast",
recommending ROTE [63] until better hardware exists.  Both are modelled:

* :class:`MonotonicCounter` — ~100 ms increments and a wear-out limit,
  after which the counter is permanently dead;
* :class:`RoteCounterService` — a quorum of counter replicas reached over
  the LAN: ~0.8 ms increments, no wear, and increments only succeed while
  a majority of replicas is reachable.

Counters are bound to the *signer* identity of the creating enclave so a
different vendor's enclave cannot advance them (real SGX binds counters
to the enclave identity through the PSE).
"""

from __future__ import annotations

import hmac
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CounterError
from repro.netsim.clock import SimClock
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.enclave import Enclave


def _increment_rendezvous(
    clock: SimClock | None, counter_id: str
) -> AbstractContextManager[None]:
    """Counter increments are inherently serial: the hardware (or ROTE
    quorum) processes one at a time.  On a parallel clock, overlapping
    requests incrementing the same counter rendezvous here; on a serial
    clock this never waits."""
    if clock is None:
        return nullcontext()
    return clock.exclusive(f"counter:{counter_id}", account="counter-wait")


@dataclass
class _CounterState:
    owner_signer: bytes
    value: int = 0
    increments: int = 0
    dead: bool = False


class MonotonicCounter:
    """SGX-style hardware monotonic counter service for one platform."""

    def __init__(self, clock: SimClock | None, costs: SgxCostModel) -> None:
        self._clock = clock
        self._costs = costs
        self._counters: dict[str, _CounterState] = {}

    def create(self, enclave: Enclave, counter_id: str) -> None:
        if counter_id in self._counters:
            raise CounterError(f"counter {counter_id!r} already exists")
        self._counters[counter_id] = _CounterState(owner_signer=enclave.signer_id())

    def _state(self, enclave: Enclave, counter_id: str) -> _CounterState:
        state = self._counters.get(counter_id)
        if state is None:
            raise CounterError(f"no counter {counter_id!r}")
        if not hmac.compare_digest(state.owner_signer, enclave.signer_id()):
            raise CounterError("counter is owned by a different enclave signer")
        if state.dead:
            raise CounterError(f"counter {counter_id!r} has worn out")
        return state

    def read(self, enclave: Enclave, counter_id: str) -> int:
        state = self._state(enclave, counter_id)
        if self._clock is not None:
            self._clock.charge(self._costs.counter_read, account="counter")
        return state.value

    def increment(self, enclave: Enclave, counter_id: str) -> int:
        """Increment and return the new value.  Slow, and wears the counter."""
        state = self._state(enclave, counter_id)
        with _increment_rendezvous(self._clock, counter_id):
            if self._clock is not None:
                self._clock.charge(self._costs.counter_increment, account="counter")
            state.value += 1
            state.increments += 1
            if state.increments >= self._costs.counter_wear_limit:
                state.dead = True
            return state.value

    def exists(self, counter_id: str) -> bool:
        return counter_id in self._counters

    # -- persistence (hardware counters survive power cycles; the simulated
    # -- ones expose their state so long-lived deployments can carry it) ----

    def export_state(self) -> dict[str, dict[str, Any]]:
        return {
            counter_id: {
                "owner": state.owner_signer.hex(),
                "value": state.value,
                "increments": state.increments,
                "dead": state.dead,
            }
            for counter_id, state in self._counters.items()
        }

    def restore_state(self, state: dict[str, dict[str, Any]]) -> None:
        self._counters = {
            counter_id: _CounterState(
                owner_signer=bytes.fromhex(entry["owner"]),
                value=entry["value"],
                increments=entry["increments"],
                dead=entry["dead"],
            )
            for counter_id, entry in state.items()
        }


@dataclass
class _Replica:
    """One ROTE counter replica; ``up`` is toggled by failure-injection tests."""

    values: dict[str, int] = field(default_factory=dict)
    up: bool = True


class RoteCounterService:
    """ROTE-style distributed monotonic counter.

    A write succeeds when a majority of replicas acknowledges; the read
    value is the maximum over a majority.  There is no wear-out, and an
    increment costs one LAN quorum round trip.
    """

    def __init__(self, clock: SimClock | None, costs: SgxCostModel, replicas: int = 4) -> None:
        if replicas < 3:
            raise CounterError("ROTE needs at least 3 replicas for a meaningful quorum")
        self._clock = clock
        self._costs = costs
        self._replicas = [_Replica() for _ in range(replicas)]
        self._owners: dict[str, bytes] = {}

    @property
    def quorum(self) -> int:
        return len(self._replicas) // 2 + 1

    def _up_replicas(self) -> list[_Replica]:
        return [replica for replica in self._replicas if replica.up]

    def set_replica_up(self, index: int, up: bool) -> None:
        """Failure injection: take a replica down or bring it back."""
        self._replicas[index].up = up

    def create(self, enclave: Enclave, counter_id: str) -> None:
        if counter_id in self._owners:
            raise CounterError(f"counter {counter_id!r} already exists")
        self._owners[counter_id] = enclave.signer_id()
        for replica in self._replicas:
            replica.values[counter_id] = 0

    def _check(self, enclave: Enclave, counter_id: str) -> None:
        owner = self._owners.get(counter_id)
        if owner is None:
            raise CounterError(f"no counter {counter_id!r}")
        if not hmac.compare_digest(owner, enclave.signer_id()):
            raise CounterError("counter is owned by a different enclave signer")

    def read(self, enclave: Enclave, counter_id: str) -> int:
        self._check(enclave, counter_id)
        up = self._up_replicas()
        if len(up) < self.quorum:
            raise CounterError("cannot reach a read quorum of ROTE replicas")
        if self._clock is not None:
            self._clock.charge(self._costs.rote_read, account="counter")
        return max(replica.values[counter_id] for replica in up[: self.quorum])

    def increment(self, enclave: Enclave, counter_id: str) -> int:
        self._check(enclave, counter_id)
        up = self._up_replicas()
        if len(up) < self.quorum:
            raise CounterError("cannot reach a write quorum of ROTE replicas")
        with _increment_rendezvous(self._clock, counter_id):
            if self._clock is not None:
                self._clock.charge(self._costs.rote_increment, account="counter")
            new_value = max(replica.values[counter_id] for replica in up) + 1
            for replica in up:
                replica.values[counter_id] = new_value
            return new_value

    def exists(self, counter_id: str) -> bool:
        return counter_id in self._owners

    def export_state(self) -> dict[str, Any]:
        return {
            "owners": {cid: owner.hex() for cid, owner in self._owners.items()},
            "replicas": [
                {"up": replica.up, "values": dict(replica.values)}
                for replica in self._replicas
            ],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._owners = {
            cid: bytes.fromhex(owner) for cid, owner in state["owners"].items()
        }
        self._replicas = [
            _Replica(values=dict(entry["values"]), up=entry["up"])
            for entry in state["replicas"]
        ]

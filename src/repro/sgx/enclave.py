"""Enclave lifecycle, measurements, and the ECALL/OCALL boundary.

An :class:`Enclave` subclass *is* the trusted code: its measurement is the
SHA-256 over the source of the modules it declares as its trusted
computing base plus its build-time configuration (e.g. the hard-coded CA
public key, exactly as in the paper).  The untrusted host never holds the
enclave object itself — :meth:`SgxPlatform.load` returns an
:class:`EnclaveHandle` that exposes only the methods marked with
:func:`ecall` and charges transition costs for every crossing.

This gives the reproduction the two properties the paper leans on:

* a *well-defined interface* — nothing but declared ECALLs is reachable,
  enforced at runtime;
* a *measurable TCB* — ``tcb_report()`` counts the lines of enclave-
  resident code, the analogue of the paper's 8441-LoC claim.
"""

from __future__ import annotations

import hashlib
import inspect
import secrets
import sys
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import EnclaveCrashed, EnclaveError
from repro.netsim.clock import SimClock
from repro.sgx.costmodel import DEFAULT_COSTS, SgxCostModel
from repro.sgx.epc import EpcModel

_ECALL_MARKER = "_sgx_ecall"

F = TypeVar("F", bound=Callable[..., Any])


def ecall(fn: F) -> F:
    """Mark an :class:`Enclave` method as part of the ECALL interface."""
    setattr(fn, _ECALL_MARKER, True)
    return fn


def _module_source(module_name: str) -> str:
    module = sys.modules.get(module_name)
    if module is None:
        __import__(module_name)
        module = sys.modules[module_name]
    try:
        return inspect.getsource(module)
    except (OSError, TypeError):
        # Interactive/REPL-defined enclaves have no retrievable source; the
        # measurement then covers only the module name and configuration.
        return ""


def count_loc(source: str) -> int:
    """Count non-blank, non-comment source lines (the paper's LoC metric)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


@dataclass
class TcbReport:
    """Lines of code resident in the enclave, per module."""

    per_module: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.per_module.values())

    def format(self) -> str:
        lines = [f"{'module':<45} {'LoC':>6}"]
        for name in sorted(self.per_module):
            lines.append(f"{name:<45} {self.per_module[name]:>6}")
        lines.append(f"{'TOTAL':<45} {self.total:>6}")
        return "\n".join(lines)


class Enclave:
    """Base class for trusted code.

    Subclasses declare ``TCB_MODULES`` — the module names whose code runs
    inside the enclave — and implement ECALLs.  State lives in instance
    attributes; it is volatile (lost on :meth:`EnclaveHandle.destroy`)
    unless sealed out.
    """

    #: Module names that constitute the enclave's trusted computing base.
    TCB_MODULES: tuple[str, ...] = ()

    #: The vendor identity (MRSIGNER analogue) for sealing policy SIGNER.
    SIGNER: str = "repro-segshare"

    def __init__(self) -> None:
        self._platform: SgxPlatform | None = None
        self._destroyed = False

    # -- identity -----------------------------------------------------------

    def config_measurement_extra(self) -> bytes:
        """Build-time configuration folded into the measurement.

        SeGShare overrides this with the hard-coded CA public key so that a
        CA can recognize "an enclave that was built specifically for this
        CA" (Section IV-A).
        """
        return b""

    def measurement(self) -> bytes:
        """MRENCLAVE analogue: hash over the enclave class identity, the
        TCB source, and the build-time configuration."""
        hasher = hashlib.sha256()
        hasher.update(type(self).__qualname__.encode("utf-8") + b"\x00")
        for module_name in (type(self).__module__, *self.TCB_MODULES):
            hasher.update(module_name.encode("utf-8") + b"\x00")
            hasher.update(_module_source(module_name).encode("utf-8"))
        hasher.update(b"\x00config\x00" + self.config_measurement_extra())
        return hasher.digest()

    def signer_id(self) -> bytes:
        """MRSIGNER analogue."""
        return hashlib.sha256(self.SIGNER.encode("utf-8")).digest()

    def tcb_report(self) -> TcbReport:
        """LoC of every module inside the enclave boundary."""
        modules = dict.fromkeys((type(self).__module__, *self.TCB_MODULES))
        return TcbReport(
            per_module={name: count_loc(_module_source(name)) for name in modules}
        )

    # -- platform services --------------------------------------------------

    @property
    def platform(self) -> "SgxPlatform":
        if self._platform is None:
            raise EnclaveError("enclave is not loaded on a platform")
        return self._platform

    def on_load(self) -> None:
        """Hook called once the enclave is loaded (EINIT analogue)."""

    def on_destroy(self) -> None:
        """Hook called on orderly destruction, before state is dropped.

        Gives the enclave a chance to release platform-side accounting
        (EPC residency of long-lived caches).  NOT called on a crash —
        a killed enclave releases nothing, exactly like real SGX, where
        the EPC pages are reclaimed only when the host tears the enclave
        down; :meth:`SeGShareServer.restart_enclave` destroys the old
        handle either way, so the accounting is settled before a
        replacement loads.
        """

    def ocall(self, account: str = "transitions") -> None:
        """Charge one OCALL transition (call out of the enclave)."""
        clock = self.platform.clock
        if clock is not None:
            clock.charge(self.platform.costs.ocall_transition, account=account)

    def charge(self, seconds: float, account: str) -> None:
        """Charge in-enclave compute time to the platform clock."""
        clock = self.platform.clock
        if clock is not None:
            clock.charge(seconds, account=account)

    @property
    def alive(self) -> bool:
        """False once destroyed.  Host-observable liveness: whether a
        process exists is never a secret, so failure detectors (heartbeat
        probes) may read this without crossing the trust boundary."""
        return not self._destroyed

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveCrashed("enclave has been destroyed")


class EnclaveHandle:
    """Untrusted host's view of a loaded enclave.

    Only methods decorated with :func:`ecall` are reachable; every call
    charges one enclave transition (or a cheaper switchless enqueue when
    the handle is switched to switchless mode, Section II-A).
    """

    def __init__(self, enclave: Enclave, platform: "SgxPlatform") -> None:
        self._enclave = enclave
        self._platform = platform
        self._switchless = False
        self.calls = 0

    def use_switchless(self, enabled: bool = True) -> None:
        """Route subsequent ECALLs through the switchless queue."""
        self._switchless = enabled

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ECALL ``name``."""
        self._enclave._check_alive()
        if self._platform.fault_plan is not None:
            self._platform.crashpoint(f"ecall:{name}")
        method = getattr(type(self._enclave), name, None)
        if method is None or not getattr(method, _ECALL_MARKER, False):
            raise EnclaveError(f"{name!r} is not an ECALL of {type(self._enclave).__name__}")
        self.calls += 1
        clock = self._platform.clock
        if clock is not None:
            cost = (
                self._platform.costs.switchless_call
                if self._switchless
                else self._platform.costs.ecall_transition
            )
            clock.charge(cost, account="transitions")
        return method(self._enclave, *args, **kwargs)

    def measurement(self) -> bytes:
        """Measurements are public — the host may read (but not forge) them."""
        return self._enclave.measurement()

    def destroy(self) -> None:
        """Destroy the enclave: all volatile state is lost (Section II-A)."""
        self._enclave.on_destroy()
        self._enclave._destroyed = True
        # Drop trusted state so use-after-destroy is a hard error, not stale data.
        for attr in list(vars(self._enclave)):
            if attr not in ("_platform", "_destroyed"):
                delattr(self._enclave, attr)


class SgxPlatform:
    """One SGX-capable machine: fuse key, EPC, clock, quoting identity.

    The per-platform ``fuse_key`` is the root of sealing-key derivation —
    blobs sealed on one platform do not unseal on another, which the
    replication tests rely on.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        costs: SgxCostModel = DEFAULT_COSTS,
        platform_id: str | None = None,
        fuse_key: bytes | None = None,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.platform_id = platform_id or secrets.token_hex(8)
        # Passing fuse_key models re-running on the SAME physical machine
        # (persistent demo deployments); by default every platform is new.
        self.fuse_key = fuse_key or secrets.token_bytes(32)
        self.epc = EpcModel(clock=clock, costs=costs)
        self._loaded: list[EnclaveHandle] = []
        #: Optional :class:`repro.faults.FaultPlan`; ``None`` (the default)
        #: keeps every crashpoint a no-op.
        self.fault_plan: Any | None = None

    def crashpoint(self, site: str) -> None:
        """Fault-injection hook at an operation boundary.

        When a fault plan is attached and decides to fire at ``site``, every
        enclave loaded on this platform is killed (volatile state lost, as
        if the host process died) and :class:`EnclaveCrashed` is raised.
        Callers recover via ``SeGShareServer.restart_enclave``.
        """
        plan = self.fault_plan
        if plan is None or not plan.on_crashpoint(site):
            return
        for handle in self._loaded:
            handle._enclave._destroyed = True
        raise EnclaveCrashed(f"fault injection: enclave killed at {site}")

    def load(self, enclave: Enclave) -> EnclaveHandle:
        """Load and initialize an enclave (ECREATE/EADD/EINIT analogue)."""
        if enclave._platform is not None:
            raise EnclaveError("enclave is already loaded")
        enclave._platform = self
        handle = EnclaveHandle(enclave, self)
        self._loaded.append(handle)
        enclave.on_load()
        return handle

    @property
    def loaded_enclaves(self) -> list[EnclaveHandle]:
        return list(self._loaded)

"""The Intel Protected File System Library, re-implemented (Section II-A).

On write, data is split into 4 KiB chunks, each chunk is encrypted with
PAE, and chunk integrity is bound into a Merkle hash tree whose root is
kept in an encrypted metadata node.  On read, confidentiality and
integrity of every chunk is verified.  At any point, a file may have one
writer handle or any number of reader handles.

Keys: the file-system master key is either provided manually or derived
from the enclave's sealing key — both options the real library offers.
Each file gets its own key derived from the master key and the file path,
and every chunk's associated data binds (path, chunk index) so chunks
cannot be swapped between files or positions.

Note the scope: this protects *individual file* integrity.  Freshness of
the file *system* (rollback across files) is the job of
:mod:`repro.core.rollback`, mirroring the paper's split.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from repro.crypto import default_pae, derive_key
from repro.crypto.merkle import MerkleTree
from repro.errors import IntegrityError, ProtectedFsError
from repro.sgx.enclave import Enclave
from repro.sgx.sealing import SealPolicy
from repro.storage.backends import UntrustedStore
from repro.util.serialization import Reader, Writer

CHUNK_SIZE = 4096

_META_SUFFIX = "\x00meta"


def _chunk_key(path: str, index: int) -> str:
    return f"{path}\x00chunk\x00{index}"


def _chunk_aad(path: str, index: int) -> bytes:
    return Writer().str(path).u32(index).take()


@dataclass
class _Meta:
    size: int
    chunk_count: int
    merkle_root: bytes

    def serialize(self) -> bytes:
        return Writer().u64(self.size).u32(self.chunk_count).bytes(self.merkle_root).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "_Meta":
        r = Reader(data)
        meta = cls(size=r.u64(), chunk_count=r.u32(), merkle_root=r.bytes())
        r.expect_end()
        return meta


class ProtectedFs:
    """A protected file system over an untrusted store.

    ``master_key`` may be passed explicitly; otherwise it is derived from
    the enclave's platform fuse key and signer identity (the "derive from
    sealing key" mode of the real library), in which case ``enclave`` is
    required.
    """

    def __init__(
        self,
        store: UntrustedStore,
        master_key: bytes | None = None,
        enclave: Enclave | None = None,
    ) -> None:
        if master_key is None:
            if enclave is None:
                raise ProtectedFsError("need a master key or an enclave to derive one")
            master_key = derive_key(
                enclave.platform.fuse_key,
                f"pfs/master/{SealPolicy.MRSIGNER.value}",
                enclave.signer_id(),
                length=16,
            )
        self._master_key = master_key
        self._store = store
        self._enclave = enclave
        self._pae = default_pae()
        self._open_writers: set[str] = set()
        self._open_readers: dict[str, int] = {}

    # -- cost accounting ------------------------------------------------------

    def _charge_crypto(self, nbytes: int) -> None:
        if self._enclave is not None and self._enclave.platform.clock is not None:
            self._enclave.charge(
                self._enclave.platform.costs.aead_time(nbytes), account="pfs-crypto"
            )

    def _charge_read(self, nbytes: int) -> None:
        """The read path pays decryption plus integrity-verification time."""
        if self._enclave is not None and self._enclave.platform.clock is not None:
            costs = self._enclave.platform.costs
            self._enclave.charge(
                costs.aead_time(nbytes) + nbytes / costs.pfs_read_bytes_per_second,
                account="pfs-crypto",
            )

    def _charge_ocall(self) -> None:
        if self._enclave is None:
            return
        if getattr(self._store, "owns_ocall_accounting", False):
            # The storage engine's deferred stores charge per actual
            # round-trip themselves — buffered ops are charged once per
            # flushed group at transaction commit.
            return
        self._enclave.ocall(account="pfs-io")

    # -- keys -----------------------------------------------------------------

    def _file_key(self, path: str) -> bytes:
        return derive_key(self._master_key, "pfs/file-key", path.encode("utf-8"), length=16)

    # -- handle bookkeeping ---------------------------------------------------

    def _acquire_writer(self, path: str) -> None:
        if path in self._open_writers:
            raise ProtectedFsError(f"{path!r} already has an open writer handle")
        if self._open_readers.get(path):
            raise ProtectedFsError(f"{path!r} has open reader handles")
        self._open_writers.add(path)

    def _release_writer(self, path: str) -> None:
        self._open_writers.discard(path)

    def _acquire_reader(self, path: str) -> None:
        if path in self._open_writers:
            raise ProtectedFsError(f"{path!r} has an open writer handle")
        self._open_readers[path] = self._open_readers.get(path, 0) + 1

    def _release_reader(self, path: str) -> None:
        count = self._open_readers.get(path, 0)
        if count <= 1:
            self._open_readers.pop(path, None)
        else:
            self._open_readers[path] = count - 1

    # -- whole-file API -------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace the protected file at ``path``."""
        with self.open_write(path) as handle:
            handle.write(data)

    def read_file(self, path: str) -> bytes:
        """Read and verify the whole protected file at ``path``."""
        with self.open_read(path) as handle:
            return handle.read_all()

    def exists(self, path: str) -> bool:
        return self._store.exists(path + _META_SUFFIX)

    def remove(self, path: str) -> None:
        """Delete the file and all its chunks."""
        if path in self._open_writers or self._open_readers.get(path):
            raise ProtectedFsError(f"{path!r} has open handles")
        meta = self._load_meta(path)
        self._charge_ocall()
        self._store.delete(path + _META_SUFFIX)
        for index in range(meta.chunk_count):
            self._store.delete(_chunk_key(path, index))

    def list_paths(self) -> list[str]:
        """All protected file paths in the store."""
        return sorted(
            key[: -len(_META_SUFFIX)]
            for key in self._store.keys()
            if key.endswith(_META_SUFFIX)
        )

    def stored_size(self, path: str) -> int:
        """Total untrusted bytes used by the file (meta + chunks)."""
        meta = self._load_meta(path)
        total = self._store.size(path + _META_SUFFIX)
        for index in range(meta.chunk_count):
            total += self._store.size(_chunk_key(path, index))
        return total

    # -- streaming handles ----------------------------------------------------

    def open_write(self, path: str) -> "WriteHandle":
        self._acquire_writer(path)
        return WriteHandle(self, path)

    def open_read(self, path: str) -> "ReadHandle":
        meta = self._load_meta(path)
        self._acquire_reader(path)
        return ReadHandle(self, path, meta)

    # -- internals -----------------------------------------------------------

    def _load_meta(self, path: str) -> _Meta:
        self._charge_ocall()
        key = path + _META_SUFFIX
        if not self._store.exists(key):
            raise ProtectedFsError(f"no protected file at {path!r}")
        blob = self._store.get(key)
        self._charge_read(len(blob))
        try:
            plain = self._pae.decrypt(self._file_key(path), blob, aad=b"pfs-meta\x00" + path.encode())
        except IntegrityError as exc:
            raise ProtectedFsError(f"metadata of {path!r} failed verification") from exc
        return _Meta.deserialize(plain)

    def _store_meta(self, path: str, meta: _Meta) -> None:
        plain = meta.serialize()
        self._charge_crypto(len(plain))
        blob = self._pae.encrypt(self._file_key(path), plain, aad=b"pfs-meta\x00" + path.encode())
        self._charge_ocall()
        self._store.put(path + _META_SUFFIX, blob)

    def _write_chunk(self, path: str, index: int, chunk: bytes) -> bytes:
        """Encrypt and store one chunk; returns the ciphertext (Merkle leaf)."""
        self._charge_crypto(len(chunk))
        blob = self._pae.encrypt(self._file_key(path), chunk, aad=_chunk_aad(path, index))
        self._charge_ocall()
        self._store.put(_chunk_key(path, index), blob)
        return blob

    def _read_chunk(self, path: str, index: int) -> tuple[bytes, bytes]:
        """Load one chunk; returns (plaintext, ciphertext)."""
        self._charge_ocall()
        key = _chunk_key(path, index)
        if not self._store.exists(key):
            raise ProtectedFsError(f"chunk {index} of {path!r} is missing")
        blob = self._store.get(key)
        self._charge_read(len(blob))
        try:
            plain = self._pae.decrypt(self._file_key(path), blob, aad=_chunk_aad(path, index))
        except IntegrityError as exc:
            raise ProtectedFsError(f"chunk {index} of {path!r} failed verification") from exc
        return plain, blob


class WriteHandle:
    """Exclusive, append-only writer.  Closing finalizes the Merkle root."""

    def __init__(self, fs: ProtectedFs, path: str) -> None:
        self._fs = fs
        self._path = path
        self._buffer = bytearray()
        self._size = 0
        self._index = 0
        self._leaves: list[bytes] = []
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ProtectedFsError("write on closed handle")
        self._buffer.extend(data)
        self._size += len(data)
        while len(self._buffer) >= CHUNK_SIZE:
            chunk = bytes(self._buffer[:CHUNK_SIZE])
            del self._buffer[:CHUNK_SIZE]
            self._leaves.append(self._fs._write_chunk(self._path, self._index, chunk))
            self._index += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._buffer or self._index == 0:
                chunk = bytes(self._buffer)
                self._leaves.append(self._fs._write_chunk(self._path, self._index, chunk))
                self._index += 1
            # Remove stale chunks from a previous, longer version of the file.
            stale = self._index
            while self._fs._store.exists(_chunk_key(self._path, stale)):
                self._fs._store.delete(_chunk_key(self._path, stale))
                stale += 1
            root = MerkleTree(self._leaves).root()
            self._fs._store_meta(
                self._path, _Meta(size=self._size, chunk_count=self._index, merkle_root=root)
            )
        finally:
            self._fs._release_writer(self._path)

    def __enter__(self) -> "WriteHandle":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._fs._release_writer(self._path)


class ReadHandle:
    """Shared, sequential reader with chunk-by-chunk verification."""

    def __init__(self, fs: ProtectedFs, path: str, meta: _Meta) -> None:
        self._fs = fs
        self._path = path
        self._meta = meta
        self._index = 0
        self._leaves: list[bytes] = []
        self._pending = bytearray()
        self._closed = False

    @property
    def size(self) -> int:
        return self._meta.size

    def read_chunk(self) -> bytes | None:
        """Next plaintext chunk, or None at end of file.

        The Merkle root is checked once the final chunk has been read; a
        truncated or spliced file therefore cannot be fully read without
        raising.
        """
        if self._closed:
            raise ProtectedFsError("read on closed handle")
        if self._index >= self._meta.chunk_count:
            return None
        plain, blob = self._fs._read_chunk(self._path, self._index)
        self._leaves.append(blob)
        self._index += 1
        if self._index == self._meta.chunk_count:
            self._verify_root()
        return plain

    def read_all(self) -> bytes:
        parts = []
        while (chunk := self.read_chunk()) is not None:
            parts.append(chunk)
        data = b"".join(parts)
        if len(data) != self._meta.size:
            raise ProtectedFsError(f"size mismatch reading {self._path!r}")
        return data

    def _verify_root(self) -> None:
        if not hmac.compare_digest(MerkleTree(self._leaves).root(), self._meta.merkle_root):
            raise ProtectedFsError(f"Merkle root mismatch for {self._path!r}")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fs._release_reader(self._path)

    def __enter__(self) -> "ReadHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

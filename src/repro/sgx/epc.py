"""Model of the Enclave Page Cache (Processor Reserved Memory).

SGX dedicates 128 MiB of RAM to the EPC; enclave working sets beyond that
are transparently paged by the OS with a large performance penalty
(Section II-A).  The model tracks allocations per enclave and charges
page-swap time whenever the resident set exceeds the EPC, using a simple
working-set approximation: every byte allocated beyond the limit costs
one page-out plus one page-in when touched.

SeGShare's design point — a small, constant per-request buffer — makes
this model boring in the happy path, which is precisely the paper's
claim; the test suite demonstrates the penalty by allocating past the
limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EnclaveError
from repro.netsim.clock import SimClock
from repro.sgx.costmodel import SgxCostModel

EPC_BYTES = 128 * 1024 * 1024


@dataclass
class EpcStats:
    allocated: int = 0
    peak: int = 0
    page_swaps: int = 0
    #: Portion of ``allocated`` held by long-lived enclave caches (the
    #: metadata cache), as opposed to transient per-request buffers.
    cache_bytes: int = 0


@dataclass
class EpcModel:
    """EPC accounting shared by all enclaves on one platform."""

    clock: SimClock | None
    costs: SgxCostModel
    capacity: int = EPC_BYTES
    stats: EpcStats = field(default_factory=EpcStats)

    def alloc(self, nbytes: int) -> None:
        """Account an enclave allocation of ``nbytes``.

        Bytes beyond the EPC capacity are immediately charged paging cost:
        the OS must evict resident pages and SGX re-encrypts them.
        """
        if nbytes < 0:
            raise EnclaveError("negative allocation")
        before = self.stats.allocated
        self.stats.allocated += nbytes
        self.stats.peak = max(self.stats.peak, self.stats.allocated)
        overflow = self.stats.allocated - max(before, self.capacity)
        if overflow > 0:
            pages = (overflow + self.costs.page_size - 1) // self.costs.page_size
            self.stats.page_swaps += pages
            if self.clock is not None:
                self.clock.charge(pages * self.costs.epc_page_swap, account="epc-paging")

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` of enclave memory."""
        if nbytes < 0 or nbytes > self.stats.allocated:
            raise EnclaveError(f"invalid free of {nbytes} (allocated {self.stats.allocated})")
        self.stats.allocated -= nbytes

    def alloc_cache(self, nbytes: int) -> None:
        """Account ``nbytes`` of long-lived cache residency.

        Same paging semantics as :meth:`alloc` — a cache sized past the
        EPC pays swap cost like any other enclave memory — but tracked
        separately so stats can attribute residency to the cache.
        """
        self.alloc(nbytes)
        self.stats.cache_bytes += nbytes

    def free_cache(self, nbytes: int) -> None:
        """Release cache residency accounted via :meth:`alloc_cache`."""
        if nbytes < 0 or nbytes > self.stats.cache_bytes:
            raise EnclaveError(
                f"invalid cache free of {nbytes} (cache holds {self.stats.cache_bytes})"
            )
        self.free(nbytes)
        self.stats.cache_bytes -= nbytes

    def touch(self, nbytes: int) -> None:
        """Charge access cost for a working set of ``nbytes``.

        If the current resident set exceeds the EPC, a proportional share
        of the touched pages miss and must be swapped in.
        """
        if self.stats.allocated <= self.capacity or self.stats.allocated == 0:
            return
        miss_fraction = 1 - self.capacity / self.stats.allocated
        pages = int(miss_fraction * nbytes / self.costs.page_size)
        if pages > 0:
            self.stats.page_swaps += pages
            if self.clock is not None:
                self.clock.charge(pages * self.costs.epc_page_swap, account="epc-paging")

"""Plaintext-storing WebDAV servers: the Apache and nginx baselines of Fig. 3.

Both are TLS-terminating web servers that store uploads *unencrypted* —
the latency baselines the paper races against.  Real bytes flow over the
simulated link; each server charges its own per-request and per-byte
processing costs on top, calibrated so the paper's 200 MB numbers come
out (§VII-B: upload/download 4.74 s / 2.62 s for Apache, 1.84 s / 0.93 s
for nginx on the Azure pair):

* the nginx profile is nearly transport-bound (sendfile-style zero-copy),
* the Apache profile pays markedly more per ingested byte (buffered
  writes plus synchronous disk behaviour) and per served byte.

Neither provides any access control beyond possessing the URL — which is
the point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.netsim.network import NetworkEnv
from repro.storage.backends import InMemoryStore
from repro.tls.session import STREAM_CHUNK, chunk_payload


@dataclass(frozen=True)
class WebDavProfile:
    """Per-server processing costs (seconds, seconds/byte)."""

    name: str
    request_overhead: float
    per_byte_in: float
    per_byte_out: float
    tls_handshake: float


APACHE_PROFILE = WebDavProfile(
    name="apache-httpd",
    request_overhead=0.004,
    per_byte_in=14.4e-9,
    per_byte_out=8.4e-9,
    tls_handshake=0.0012,
)

NGINX_PROFILE = WebDavProfile(
    name="nginx",
    request_overhead=0.0015,
    per_byte_in=0.20e-9,
    per_byte_out=0.15e-9,
    tls_handshake=0.0009,
)


class PlainWebDavServer:
    """A plaintext WebDAV file server with a calibrated cost profile."""

    def __init__(self, env: NetworkEnv, profile: WebDavProfile) -> None:
        self.env = env
        self.profile = profile
        self.store = InMemoryStore()

    def _account(self) -> str:
        return f"{self.profile.name}-cpu"

    def connect(self) -> "PlainWebDavClient":
        """TLS handshake: one WAN round trip plus asymmetric crypto."""
        self.env.clock.charge(self.env.link.spec.rtt, account="network")
        self.env.clock.charge(self.profile.tls_handshake, account=self._account())
        return PlainWebDavClient(self)

    # -- server-side request processing -------------------------------------------

    def _process_put(self, path: str, data: bytes) -> None:
        clock = self.env.clock
        clock.charge(self.profile.request_overhead, account=self._account())
        clock.charge(len(data) * self.profile.per_byte_in, account=self._account())
        self.store.put(path, data)

    def _process_get(self, path: str) -> bytes:
        clock = self.env.clock
        clock.charge(self.profile.request_overhead, account=self._account())
        data = self.store.get(path)
        clock.charge(len(data) * self.profile.per_byte_out, account=self._account())
        return data


class PlainWebDavClient:
    """Client handle charging transfer time for PUT/GET round trips."""

    def __init__(self, server: PlainWebDavServer) -> None:
        self._server = server
        self._link = server.env.link

    def put(self, path: str, data: bytes) -> None:
        """HTTP PUT: stream the body, then receive the status line."""
        first = True
        for chunk in chunk_payload(data, STREAM_CHUNK):
            if first:
                self._link.transfer_up(len(chunk) + 256)  # request line + headers
                first = False
            else:
                self._link.stream_up(len(chunk))
        self._server._process_put(path, data)
        self._link.transfer_down(128)  # "201 Created"

    def get(self, path: str) -> bytes:
        """HTTP GET: request line up, streamed body down."""
        self._link.transfer_up(256)
        try:
            data = self._server._process_get(path)
        except StorageError:
            self._link.transfer_down(128)
            raise
        first = True
        for chunk in chunk_payload(data, STREAM_CHUNK):
            if first:
                self._link.transfer_down(len(chunk) + 128)
                first = False
            else:
                self._link.stream_down(len(chunk))
        return data

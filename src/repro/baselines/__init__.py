"""Baseline systems the evaluation compares against.

* :mod:`repro.baselines.webdav_plain` — the TLS-enabled but plaintext-
  storing Apache httpd and nginx WebDAV servers of Fig. 3.
* :mod:`repro.baselines.hybrid_encryption` — a hybrid-encryption (HE)
  cryptographic file sharing system in the style of SiRiUS/Plutus, whose
  revocations re-encrypt files and re-wrap keys; the contrast that
  motivates SeGShare's design (objective P3).
"""

from repro.baselines.hybrid_encryption import HybridEncryptionShare
from repro.baselines.webdav_plain import (
    APACHE_PROFILE,
    NGINX_PROFILE,
    PlainWebDavServer,
    WebDavProfile,
)

__all__ = [
    "APACHE_PROFILE",
    "NGINX_PROFILE",
    "HybridEncryptionShare",
    "PlainWebDavServer",
    "WebDavProfile",
]

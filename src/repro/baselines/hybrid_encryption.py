"""A hybrid-encryption (HE) cryptographic file sharing baseline.

The design point SeGShare argues against (paper Sections I and III-D):
each file is encrypted under a fresh symmetric file key; the file key is
wrapped with the public key of every user (or group member) who may read
it.  Users decrypt the wrap client-side and gain **plaintext access to
the file key** — which is exactly why *immediate* revocation is
expensive:

* revoking one user's permission requires generating a new file key,
  re-encrypting the whole file, and re-wrapping the new key for every
  remaining user;
* revoking a group membership requires that procedure for **every file**
  the group can access.

This module implements the scheme functionally (PAE for the bulk, RSA-
cost-modelled key wrapping) and charges client-side crypto time to the
environment clock, so the ``ablation_revocation`` bench can plot the
asymmetry against SeGShare's constant-time revocation.  Lazy revocation
(deferring re-encryption until the next write, the common workaround the
paper criticizes as a security window) is available as an option.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto import default_pae, derive_key
from repro.errors import AccessDenied, RequestError
from repro.netsim.clock import SimClock

# Client-side crypto costs: RSA-2048 wrap/unwrap and AES at ~1.8 GB/s.
_WRAP_COST = 90e-6  # public-key encryption of a file key
_UNWRAP_COST = 600e-6  # private-key decryption
_AEAD_BPS = 1.8e9


@dataclass
class _FileEntry:
    ciphertext: bytes
    wrapped_keys: dict[str, bytes]  # user -> wrap of the file key
    key_version: int = 0
    stale_users: set[str] = field(default_factory=set)  # lazy-revoked


class HybridEncryptionShare:
    """One HE-protected share with user-level grants and group support."""

    def __init__(self, clock: SimClock | None = None, lazy_revocation: bool = False) -> None:
        self._clock = clock
        self._lazy = lazy_revocation
        self._pae = default_pae()
        self._files: dict[str, _FileEntry] = {}
        self._groups: dict[str, set[str]] = {}
        self._group_files: dict[str, set[str]] = {}
        # Simulated per-user asymmetric keys: a wrap is PAE under a
        # user-derived key, with RSA costs charged to the clock.
        self._wrap_root = secrets.token_bytes(32)

    # -- cost accounting ---------------------------------------------------------

    def _charge(self, seconds: float) -> None:
        if self._clock is not None:
            self._clock.charge(seconds, account="he-crypto")

    def _wrap_key(self, user: str) -> bytes:
        return derive_key(self._wrap_root, "he/user-wrap", user.encode(), length=16)

    def _wrap(self, user: str, file_key: bytes) -> bytes:
        self._charge(_WRAP_COST)
        return self._pae.encrypt(self._wrap_key(user), file_key, aad=b"he-wrap")

    def _unwrap(self, user: str, wrapped: bytes) -> bytes:
        self._charge(_UNWRAP_COST)
        return self._pae.decrypt(self._wrap_key(user), wrapped, aad=b"he-wrap")

    # -- groups --------------------------------------------------------------------

    def create_group(self, group: str, members: set[str]) -> None:
        self._groups[group] = set(members)
        self._group_files.setdefault(group, set())

    def grant_group(self, path: str, group: str) -> None:
        """Give every current member access; HE has no real group indirection —
        the file key is wrapped per member."""
        entry = self._entry(path)
        file_key = self._any_key(entry)
        for member in self._groups[group]:
            if member not in entry.wrapped_keys:
                entry.wrapped_keys[member] = self._wrap(member, file_key)
        self._group_files[group].add(path)

    def add_group_member(self, group: str, user: str) -> int:
        """Adding is cheap-ish: wrap the key of each group file for the user."""
        self._groups[group].add(user)
        for path in self._group_files[group]:
            entry = self._entry(path)
            entry.wrapped_keys[user] = self._wrap(user, self._any_key(entry))
        return len(self._group_files[group])

    def remove_group_member(self, group: str, user: str) -> int:
        """Immediate membership revocation: re-encrypt EVERY group file.

        Returns the number of files touched — the quantity the ablation
        bench plots.
        """
        self._groups[group].discard(user)
        for path in self._group_files[group]:
            self.revoke(path, user)
        return len(self._group_files[group])

    # -- files ----------------------------------------------------------------------

    def upload(self, user: str, path: str, data: bytes) -> None:
        file_key = secrets.token_bytes(16)
        self._charge(len(data) / _AEAD_BPS)
        ciphertext = self._pae.encrypt(file_key, data, aad=path.encode())
        self._files[path] = _FileEntry(
            ciphertext=ciphertext, wrapped_keys={user: self._wrap(user, file_key)}
        )

    def grant(self, path: str, user: str) -> None:
        entry = self._entry(path)
        entry.wrapped_keys[user] = self._wrap(user, self._any_key(entry))
        entry.stale_users.discard(user)

    def revoke(self, path: str, user: str) -> None:
        """Permission revocation.

        Eager mode re-keys and re-encrypts now; lazy mode just drops the
        wrap and marks the file stale — the revoked user can still decrypt
        the unchanged ciphertext with the old key (the security window).
        """
        entry = self._entry(path)
        if self._lazy:
            # Lazy revocation just drops the wrap; no crypto at all now —
            # the revoked user's old key still opens the ciphertext.
            entry.wrapped_keys.pop(user, None)
            entry.stale_users.add(user)
            return
        old_key = self._any_key(entry)
        entry.wrapped_keys.pop(user, None)
        self._rekey(path, entry, old_key)

    def _rekey(self, path: str, entry: _FileEntry, old_key: bytes) -> None:
        data = self._pae.decrypt(old_key, entry.ciphertext, aad=path.encode())
        self._charge(2 * len(data) / _AEAD_BPS)
        new_key = secrets.token_bytes(16)
        entry.ciphertext = self._pae.encrypt(new_key, data, aad=path.encode())
        entry.key_version += 1
        entry.stale_users.clear()
        for user in list(entry.wrapped_keys):
            entry.wrapped_keys[user] = self._wrap(user, new_key)

    def write(self, user: str, path: str, data: bytes) -> None:
        """A write re-keys in lazy mode (that is what lazy revocation defers to)."""
        entry = self._entry(path)
        file_key = self._unwrap_for(user, entry)
        if self._lazy and entry.stale_users:
            new_key = secrets.token_bytes(16)
            entry.key_version += 1
            entry.stale_users.clear()
            for holder in list(entry.wrapped_keys):
                entry.wrapped_keys[holder] = self._wrap(holder, new_key)
            file_key = new_key
        self._charge(len(data) / _AEAD_BPS)
        entry.ciphertext = self._pae.encrypt(file_key, data, aad=path.encode())

    def download(self, user: str, path: str) -> bytes:
        entry = self._entry(path)
        file_key = self._unwrap_for(user, entry)
        self._charge(len(entry.ciphertext) / _AEAD_BPS)
        return self._pae.decrypt(file_key, entry.ciphertext, aad=path.encode())

    def can_decrypt_with_old_key(self, path: str, old_key: bytes) -> bool:
        """Attack probe for the lazy-revocation window: does the *old* file
        key still open the current ciphertext?"""
        try:
            self._pae.decrypt(old_key, self._entry(path).ciphertext, aad=path.encode())
            return True
        except Exception:
            return False

    def leak_file_key(self, user: str, path: str) -> bytes:
        """What HE cannot prevent: an authorized user extracting the raw
        file key from their client (paper: 'users gain plaintext access
        to the file key')."""
        return self._unwrap_for(user, self._entry(path))

    # -- internals ------------------------------------------------------------------

    def _entry(self, path: str) -> _FileEntry:
        entry = self._files.get(path)
        if entry is None:
            raise RequestError(f"no file at {path!r}")
        return entry

    def _any_key(self, entry: _FileEntry) -> bytes:
        user, wrapped = next(iter(entry.wrapped_keys.items()))
        return self._unwrap(user, wrapped)

    def _unwrap_for(self, user: str, entry: _FileEntry) -> bytes:
        wrapped = entry.wrapped_keys.get(user)
        if wrapped is None:
            raise AccessDenied(f"{user!r} holds no wrapped key for this file")
        return self._unwrap(user, wrapped)

"""Path rules of the paper's file system model (Section II-C).

* The root directory is ``"/"``.
* A directory path is the concatenation of all directory names from the
  root, delimited **and concluded** by ``"/"`` — so directory paths always
  end with a slash: ``/D/``, ``/D/E/``.
* A content-file path is its parent directory's path plus the filename:
  ``/D/F`` — content paths never end with a slash.
* Names are flexible but must not contain ``"/"`` and must be non-empty.

This module is pure string logic with no I/O; the request handler uses
``isDir``/``parent`` exactly as Algo. 1 does.
"""

from __future__ import annotations

from repro.errors import PathError

ROOT = "/"

# Characters disallowed in names beyond "/": NUL breaks the storage-key
# encoding and the two suffix markers are reserved for sibling files.
_FORBIDDEN = {"\x00"}
RESERVED_SUFFIXES = (".acl",)


def is_dir_path(path: str) -> bool:
    """True iff ``path`` is syntactically a directory path (ends with "/")."""
    return path.endswith("/")


def is_valid_path(path: str) -> bool:
    try:
        validate_path(path)
    except PathError:
        return False
    return True


def validate_path(path: str) -> None:
    """Raise :class:`PathError` unless ``path`` is well formed."""
    if not path.startswith(ROOT):
        raise PathError(f"path must be absolute: {path!r}")
    if path == ROOT:
        return
    body = path[1:-1] if path.endswith("/") else path[1:]
    if not body:
        raise PathError(f"empty path component in {path!r}")
    for component in body.split("/"):
        if not component:
            raise PathError(f"empty path component in {path!r}")
        for ch in component:
            if ch in _FORBIDDEN:
                raise PathError(f"forbidden character in path component {component!r}")


def parent(path: str) -> str:
    """Parent directory path of ``path`` (Table IV's ``parent``).

    >>> parent("/D/F")
    '/D/'
    >>> parent("/D/E/")
    '/D/'
    >>> parent("/F")
    '/'
    """
    validate_path(path)
    if path == ROOT:
        raise PathError("the root directory has no parent")
    trimmed = path[:-1] if path.endswith("/") else path
    cut = trimmed.rfind("/")
    return trimmed[: cut + 1]


def name_of(path: str) -> str:
    """The final name component (directory name or filename).

    >>> name_of("/D/F")
    'F'
    >>> name_of("/D/E/")
    'E'
    """
    validate_path(path)
    if path == ROOT:
        return "/"
    trimmed = path[:-1] if path.endswith("/") else path
    return trimmed[trimmed.rfind("/") + 1 :]


def join(directory: str, name: str, is_dir: bool = False) -> str:
    """Append ``name`` to directory path ``directory``.

    >>> join("/D/", "F")
    '/D/F'
    >>> join("/", "E", is_dir=True)
    '/E/'
    """
    if not is_dir_path(directory):
        raise PathError(f"{directory!r} is not a directory path")
    if "/" in name or not name:
        raise PathError(f"invalid name {name!r}")
    result = directory + name + ("/" if is_dir else "")
    validate_path(result)
    return result


def ancestors(path: str) -> list[str]:
    """All ancestor directories from the root down, excluding ``path`` itself.

    >>> ancestors("/D/E/F")
    ['/', '/D/', '/D/E/']
    """
    validate_path(path)
    if path == ROOT:
        return []
    result = [ROOT]
    trimmed = path[1:-1] if path.endswith("/") else path[1:]
    components = trimmed.split("/")
    for component in components[:-1]:
        result.append(result[-1] + component + "/")
    return result

"""The file system model of paper Section II-C: paths and directory files."""

from repro.fsmodel.directory import DirectoryFile
from repro.fsmodel.paths import (
    ROOT,
    ancestors,
    is_dir_path,
    is_valid_path,
    join,
    name_of,
    parent,
    validate_path,
)

__all__ = [
    "ROOT",
    "DirectoryFile",
    "ancestors",
    "is_dir_path",
    "is_valid_path",
    "join",
    "name_of",
    "parent",
    "validate_path",
]

"""Directory file content: the sorted child list.

Per the paper, each directory file "stores a list of all its children";
Algo. 1 appends the child's path on ``put``.  The list is kept sorted so
lookups and removals are logarithmic, the same discipline the ACL files
use.  The serialized form is what the trusted file manager encrypts.
"""

from __future__ import annotations

import bisect

from repro.errors import FileSystemError
from repro.util.serialization import Reader, Writer


class DirectoryFile:
    """In-enclave representation of a directory file's plaintext content."""

    def __init__(self, children: list[str] | None = None) -> None:
        self._children = sorted(children or [])

    @property
    def children(self) -> list[str]:
        """Sorted child paths (copies; mutate via add/remove)."""
        return list(self._children)

    def __contains__(self, child: str) -> bool:
        index = bisect.bisect_left(self._children, child)
        return index < len(self._children) and self._children[index] == child

    def __len__(self) -> int:
        return len(self._children)

    def add(self, child: str) -> None:
        """Insert a child path; idempotent."""
        index = bisect.bisect_left(self._children, child)
        if index < len(self._children) and self._children[index] == child:
            return
        self._children.insert(index, child)

    def remove(self, child: str) -> None:
        index = bisect.bisect_left(self._children, child)
        if index >= len(self._children) or self._children[index] != child:
            raise FileSystemError(f"{child!r} is not a child of this directory")
        del self._children[index]

    def serialize(self) -> bytes:
        return Writer().str_list(self._children).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "DirectoryFile":
        r = Reader(data)
        children = r.str_list()
        r.expect_end()
        directory = cls()
        directory._children = sorted(children)
        return directory

"""Pure-Python AES block cipher (AES-128/192/256, encryption direction).

GCM mode only ever uses the forward cipher, so decryption of single blocks
is intentionally not implemented.  The implementation is the classic
table-driven one: four 256-entry T-tables combine SubBytes, ShiftRows and
MixColumns into one lookup per byte per round.

This is the fidelity backend: correct (validated against FIPS-197 and NIST
GCM vectors) but orders of magnitude slower than AES-NI.  The benchmark
workloads use :class:`repro.crypto.pae.HmacStreamPae` instead, as recorded
in DESIGN.md's substitution table.
"""

from __future__ import annotations

import struct

from repro.errors import KeyError_

# --- S-box generation (computed, not transcribed, to avoid copy errors) ---


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> bytes:
    # Multiplicative inverse table via exp/log tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        s = inv
        result = 0x63
        for _ in range(5):
            result ^= s
            s = ((s << 1) | (s >> 7)) & 0xFF
        sbox[value] = result
    return bytes(sbox)


SBOX = _build_sbox()

# --- T-tables: Te0[b] = MixColumns(SubBytes(b)) for each column rotation ---


def _build_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    te0, te1, te2, te3 = [], [], [], []
    for byte in range(256):
        s = SBOX[byte]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        te0.append(word)
        te1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        te2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        te3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
    return te0, te1, te2, te3


TE0, TE1, TE2, TE3 = _build_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class Aes:
    """AES forward cipher for a fixed key.

    >>> cipher = Aes(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise KeyError_(f"invalid AES key size: {len(key)} bytes")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise KeyError_("AES block must be 16 bytes")
        rk = self._round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]

        k = 4
        for _ in range(self.rounds - 1):
            t0 = (
                TE0[(s0 >> 24) & 0xFF]
                ^ TE1[(s1 >> 16) & 0xFF]
                ^ TE2[(s2 >> 8) & 0xFF]
                ^ TE3[s3 & 0xFF]
                ^ rk[k]
            )
            t1 = (
                TE0[(s1 >> 24) & 0xFF]
                ^ TE1[(s2 >> 16) & 0xFF]
                ^ TE2[(s3 >> 8) & 0xFF]
                ^ TE3[s0 & 0xFF]
                ^ rk[k + 1]
            )
            t2 = (
                TE0[(s2 >> 24) & 0xFF]
                ^ TE1[(s3 >> 16) & 0xFF]
                ^ TE2[(s0 >> 8) & 0xFF]
                ^ TE3[s1 & 0xFF]
                ^ rk[k + 2]
            )
            t3 = (
                TE0[(s3 >> 24) & 0xFF]
                ^ TE1[(s0 >> 16) & 0xFF]
                ^ TE2[(s1 >> 8) & 0xFF]
                ^ TE3[s2 & 0xFF]
                ^ rk[k + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4

        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        out0 = (
            (SBOX[(s0 >> 24) & 0xFF] << 24)
            | (SBOX[(s1 >> 16) & 0xFF] << 16)
            | (SBOX[(s2 >> 8) & 0xFF] << 8)
            | SBOX[s3 & 0xFF]
        ) ^ rk[k]
        out1 = (
            (SBOX[(s1 >> 24) & 0xFF] << 24)
            | (SBOX[(s2 >> 16) & 0xFF] << 16)
            | (SBOX[(s3 >> 8) & 0xFF] << 8)
            | SBOX[s0 & 0xFF]
        ) ^ rk[k + 1]
        out2 = (
            (SBOX[(s2 >> 24) & 0xFF] << 24)
            | (SBOX[(s3 >> 16) & 0xFF] << 16)
            | (SBOX[(s0 >> 8) & 0xFF] << 8)
            | SBOX[s1 & 0xFF]
        ) ^ rk[k + 2]
        out3 = (
            (SBOX[(s3 >> 24) & 0xFF] << 24)
            | (SBOX[(s0 >> 16) & 0xFF] << 16)
            | (SBOX[(s1 >> 8) & 0xFF] << 8)
            | SBOX[s2 & 0xFF]
        ) ^ rk[k + 3]
        return struct.pack(">4I", out0, out1, out2, out3)

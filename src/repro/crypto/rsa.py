"""RSA signatures from scratch (keygen, PKCS#1 v1.5-style signing).

The PKI layer signs certificates and the attestation layer signs quotes
with these keys.  Signing uses the CRT for a ~4x speedup; verification is
a single modular exponentiation with a small public exponent.

The padding is deterministic EMSA-PKCS1-v1_5 with a SHA-256 DigestInfo
prefix, byte-compatible with the real scheme, so signatures are stable
across processes and suitable for hashing into measurements.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.errors import CryptoError, KeyError_
from repro.util.serialization import Reader, Writer

# ASN.1 DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 note 1).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def serialize(self) -> bytes:
        w = Writer()
        w.bytes(_int_to_bytes(self.n))
        w.bytes(_int_to_bytes(self.e))
        return w.take()

    @classmethod
    def deserialize(cls, data: bytes) -> "RsaPublicKey":
        r = Reader(data)
        n = _int_from_bytes(r.bytes())
        e = _int_from_bytes(r.bytes())
        r.expect_end()
        return cls(n=n, e=e)

    def fingerprint(self) -> bytes:
        """SHA-256 over the canonical serialization; identifies the key."""
        return hashlib.sha256(self.serialize()).digest()


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def serialize(self) -> bytes:
        w = Writer()
        for value in (self.n, self.e, self.d, self.p, self.q):
            w.bytes(_int_to_bytes(value))
        return w.take()

    @classmethod
    def deserialize(cls, data: bytes) -> "RsaPrivateKey":
        r = Reader(data)
        n, e, d, p, q = (_int_from_bytes(r.bytes()) for _ in range(5))
        r.expect_end()
        return _with_crt(n, e, d, p, q)


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")


def _int_from_bytes(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _with_crt(n: int, e: int, d: int, p: int, q: int) -> RsaPrivateKey:
    return RsaPrivateKey(
        n=n,
        e=e,
        d=d,
        p=p,
        q=q,
        d_p=d % (p - 1),
        d_q=d % (q - 1),
        q_inv=pow(q, -1, p),
    )


def generate_keypair(bits: int = 2048) -> RsaPrivateKey:
    """Generate an RSA key pair with an n of ``bits`` bits.

    2048-bit generation takes a second or two in pure Python; tests and the
    simulated CA cache keys where repeated generation would dominate.
    """
    if bits < 512:
        raise KeyError_("RSA modulus below 512 bits is not supported")
    half = bits // 2
    while True:
        p = generate_prime(half)
        q = generate_prime(bits - half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; pick new primes
        return _with_crt(n, PUBLIC_EXPONENT, d, p, q)


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_PREFIX + digest
    if em_len < len(t) + 11:
        raise CryptoError("RSA modulus too small for SHA-256 signature")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign(key: RsaPrivateKey, message: bytes) -> bytes:
    """Sign ``message`` (SHA-256, PKCS#1 v1.5 padding) with CRT exponentiation."""
    em = _emsa_pkcs1_v15(message, key.size_bytes)
    m = _int_from_bytes(em)
    if m >= key.n:
        raise CryptoError("encoded message out of range")
    # CRT: s = q_inv * (s_p - s_q) mod p * q + s_q
    s_p = pow(m % key.p, key.d_p, key.p)
    s_q = pow(m % key.q, key.d_q, key.q)
    h = (key.q_inv * (s_p - s_q)) % key.p
    s = s_q + h * key.q
    return s.to_bytes(key.size_bytes, "big")


def verify(key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify a signature produced by :func:`sign`.  Returns False on any mismatch."""
    if len(signature) != key.size_bytes:
        return False
    s = _int_from_bytes(signature)
    if s >= key.n:
        return False
    em = pow(s, key.e, key.n).to_bytes(key.size_bytes, "big")
    try:
        expected = _emsa_pkcs1_v15(message, key.size_bytes)
    except CryptoError:
        return False
    return secrets.compare_digest(em, expected)


def validate_keypair(key: RsaPrivateKey) -> bool:
    """Self-check a key pair: prime factors, e*d inverse, sign/verify round trip."""
    if key.p * key.q != key.n:
        return False
    if not (is_probable_prime(key.p) and is_probable_prime(key.q)):
        return False
    probe = b"keypair validation probe"
    return verify(key.public_key, probe, sign(key, probe))

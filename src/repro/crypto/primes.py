"""Probabilistic primality testing and prime generation.

Used by :mod:`repro.crypto.rsa` for key generation.  The Miller–Rabin
implementation follows the standard algorithm with random bases from
``secrets``; 40 rounds give a false-positive probability below 2^-80,
far below any practical concern for a simulation.
"""

from __future__ import annotations

import secrets

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: list[int] = []


def _init_small_primes(limit: int = 2000) -> None:
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    _SMALL_PRIMES.extend(i for i, is_p in enumerate(sieve) if is_p)


_init_small_primes()


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Return True if ``n`` passes trial division and Miller–Rabin."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        # Force the top two bits so the product of two primes has 2*bits
        # bits, and the bottom bit so the candidate is odd.
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate


def generate_safe_prime(bits: int) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime).

    Only used by tests of the DH substrate; the TLS layer itself uses the
    fixed RFC 3526 group, so this never runs on the hot path.
    """
    while True:
        q = generate_prime(bits - 1)
        p = 2 * q + 1
        if is_probable_prime(p):
            return p

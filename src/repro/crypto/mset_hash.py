"""Incremental multiset hashes (MSet-XOR-Hash, Clarke et al., ASIACRYPT'03).

The rollback-protection extension (paper Section V-D) replaces plain
hashes in the Merkle tree with multiset hashes so that an inner node's
hash can be updated incrementally: subtract the stale child hash, add the
new one, never touching siblings.

MSet-XOR-Hash represents a multiset M of byte strings as::

    H(M) = XOR over m in M of H_K(m),  together with |M| mod 2^64

where ``H_K`` is HMAC-SHA256 under a fixed key.  XOR is commutative and
self-inverse, which gives exactly the add/remove/combine operations the
tree needs.  Security (set-collision resistance for a secret key) is
inherited from the PRF; see the cited paper for the proof.

The count is tracked because the plain XOR collapses duplicate elements;
including the cardinality detects a multiset being replayed an even
number of times.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.util.serialization import Reader, Writer

DIGEST_SIZE = 32


class MSetXorHash:
    """A mutable multiset hash value.

    >>> a = MSetXorHash(b"k")
    >>> a.add(b"x"); a.add(b"y"); a.remove(b"x")
    >>> b = MSetXorHash(b"k")
    >>> b.add(b"y")
    >>> a == b
    True
    """

    __slots__ = ("_key", "_acc", "_count")

    def __init__(self, key: bytes, acc: bytes = bytes(DIGEST_SIZE), count: int = 0) -> None:
        self._key = key
        self._acc = acc
        self._count = count

    def _h(self, element: bytes) -> bytes:
        return hmac.new(self._key, element, hashlib.sha256).digest()

    def add(self, element: bytes) -> None:
        """Add one occurrence of ``element`` to the multiset."""
        self._acc = bytes(a ^ b for a, b in zip(self._acc, self._h(element)))
        self._count = (self._count + 1) & 0xFFFFFFFFFFFFFFFF

    def remove(self, element: bytes) -> None:
        """Remove one occurrence of ``element`` (XOR is self-inverse)."""
        self._acc = bytes(a ^ b for a, b in zip(self._acc, self._h(element)))
        self._count = (self._count - 1) & 0xFFFFFFFFFFFFFFFF

    def update(self, old: bytes | None, new: bytes | None) -> None:
        """Replace ``old`` with ``new`` in one call (either may be None)."""
        if old is not None:
            self.remove(old)
        if new is not None:
            self.add(new)

    def combine(self, other: "MSetXorHash") -> None:
        """Fold another multiset hash (same key) into this one."""
        if not hmac.compare_digest(other._key, self._key):
            raise ValueError("cannot combine multiset hashes under different keys")
        self._acc = bytes(a ^ b for a, b in zip(self._acc, other._acc))
        self._count = (self._count + other._count) & 0xFFFFFFFFFFFFFFFF

    def digest(self) -> bytes:
        """The 40-byte hash value: 32-byte accumulator || 8-byte count."""
        return self._acc + self._count.to_bytes(8, "big")

    @property
    def count(self) -> int:
        return self._count

    def copy(self) -> "MSetXorHash":
        return MSetXorHash(self._key, self._acc, self._count)

    def serialize(self) -> bytes:
        return Writer().bytes(self._acc).u64(self._count).take()

    @classmethod
    def deserialize(cls, key: bytes, data: bytes) -> "MSetXorHash":
        r = Reader(data)
        acc = r.bytes()
        count = r.u64()
        r.expect_end()
        if len(acc) != DIGEST_SIZE:
            raise ValueError("bad multiset hash accumulator size")
        return cls(key, acc, count)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MSetXorHash):
            return NotImplemented
        return (
            hmac.compare_digest(self._key, other._key)
            and hmac.compare_digest(self._acc, other._acc)
            and self._count == other._count
        )

    def __hash__(self) -> int:
        return hash((self._acc, self._count))

    def __repr__(self) -> str:
        return f"MSetXorHash(count={self._count}, acc={self._acc[:4].hex()}…)"

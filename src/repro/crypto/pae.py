"""Probabilistic Authenticated Encryption (PAE) — the paper's Section II-B.

PAE_Enc takes a secret key SK, a random IV, and a plaintext v, and returns
a ciphertext c; PAE_Dec takes SK and c and returns v iff c is authentic.
Two interchangeable backends implement this contract:

:class:`AesGcmPae`
    AES-128-GCM exactly as the paper prescribes, on the pure-Python AES
    from :mod:`repro.crypto.aes`.  Validated against NIST vectors; slow.
    Use for fidelity tests and small metadata.

:class:`HmacStreamPae`
    Encrypt-then-MAC AEAD built from stdlib primitives running at C speed:
    a SHAKE-256 extendable-output keystream XORed over the plaintext, then
    HMAC-SHA256 over ``iv || aad || ciphertext``.  This is a real AEAD (a
    tampered ciphertext fails authentication; every encryption uses a fresh
    random IV), so all security-relevant code paths behave exactly as with
    GCM — only the algorithm differs, as recorded in DESIGN.md.

The ciphertext blob layout is the same for both: ``iv || body || tag``.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from abc import ABC, abstractmethod

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a standard dependency here
    _np = None

from repro.crypto.gcm import AesGcm
from repro.errors import IntegrityError, KeyError_
from repro.util.encoding import ct_equal

KEY_SIZE = 16  # AES-128 keys, as in the paper.


class Pae(ABC):
    """Interface of a probabilistic authenticated encryption scheme."""

    iv_size: int
    tag_size: int

    @property
    def overhead(self) -> int:
        """Ciphertext expansion in bytes (IV + tag)."""
        return self.iv_size + self.tag_size

    def encrypt(self, key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """PAE_Enc with a freshly drawn random IV."""
        return self.encrypt_with_iv(key, secrets.token_bytes(self.iv_size), plaintext, aad)

    @abstractmethod
    def encrypt_with_iv(self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """PAE_Enc with a caller-provided IV (tests and derived-IV schemes)."""

    @abstractmethod
    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        """PAE_Dec; raises :class:`IntegrityError` if the blob is not authentic."""

    def _check_key(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise KeyError_(f"PAE key must be {KEY_SIZE} bytes, got {len(key)}")


class AesGcmPae(Pae):
    """AES-128-GCM backend (fidelity).

    GCM instances are cached per key because building the GHASH tables
    dominates the cost of small encryptions.
    """

    iv_size = AesGcm.NONCE_SIZE
    tag_size = AesGcm.TAG_SIZE

    _CACHE_LIMIT = 64

    def __init__(self) -> None:
        self._cache: dict[bytes, AesGcm] = {}

    def _gcm(self, key: bytes) -> AesGcm:
        self._check_key(key)
        gcm = self._cache.get(key)
        if gcm is None:
            if len(self._cache) >= self._CACHE_LIMIT:
                self._cache.pop(next(iter(self._cache)))
            gcm = AesGcm(key)
            self._cache[key] = gcm
        return gcm

    def encrypt_with_iv(self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(iv) != self.iv_size:
            raise KeyError_(f"IV must be {self.iv_size} bytes")
        return iv + self._gcm(key).encrypt(iv, plaintext, aad)

    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        if len(blob) < self.overhead:
            raise IntegrityError("ciphertext too short")
        iv, body = blob[: self.iv_size], blob[self.iv_size :]
        return self._gcm(key).decrypt(iv, body, aad)


class HmacStreamPae(Pae):
    """SHAKE-256 stream cipher + HMAC-SHA256 encrypt-then-MAC backend (fast)."""

    iv_size = 16
    tag_size = 32

    @staticmethod
    def _subkeys(key: bytes) -> tuple[bytes, bytes]:
        enc = hmac.new(key, b"repro.pae.enc", hashlib.sha256).digest()
        mac = hmac.new(key, b"repro.pae.mac", hashlib.sha256).digest()
        return enc, mac

    @staticmethod
    def _keystream_xor(enc_key: bytes, iv: bytes, data: bytes) -> bytes:
        if not data:
            return b""
        keystream = hashlib.shake_256(enc_key + iv).digest(len(data))
        # numpy XOR runs at memory bandwidth; the big-int fallback keeps the
        # module importable without numpy (an order of magnitude slower).
        if _np is not None:
            a = _np.frombuffer(data, dtype=_np.uint8)
            b = _np.frombuffer(keystream, dtype=_np.uint8)
            return (a ^ b).tobytes()
        x = int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
        return x.to_bytes(len(data), "big")

    def encrypt_with_iv(self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        self._check_key(key)
        if len(iv) != self.iv_size:
            raise KeyError_(f"IV must be {self.iv_size} bytes")
        enc_key, mac_key = self._subkeys(key)
        body = self._keystream_xor(enc_key, iv, plaintext)
        tag = self._tag(mac_key, iv, aad, body)
        return iv + body + tag

    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        self._check_key(key)
        if len(blob) < self.overhead:
            raise IntegrityError("ciphertext too short")
        iv = blob[: self.iv_size]
        body = blob[self.iv_size : -self.tag_size]
        tag = blob[-self.tag_size :]
        enc_key, mac_key = self._subkeys(key)
        if not ct_equal(self._tag(mac_key, iv, aad, body), tag):
            raise IntegrityError("PAE tag mismatch")
        return self._keystream_xor(enc_key, iv, body)

    @staticmethod
    def _tag(mac_key: bytes, iv: bytes, aad: bytes, body: bytes) -> bytes:
        mac = hmac.new(mac_key, digestmod=hashlib.sha256)
        # Unambiguous framing: fixed-width lengths precede variable fields.
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(iv)
        mac.update(aad)
        mac.update(body)
        return mac.digest()


_DEFAULT = HmacStreamPae()


def default_pae() -> Pae:
    """The process-wide default PAE backend (the fast one)."""
    return _DEFAULT


def pae_enc(key: bytes, iv: bytes, value: bytes, aad: bytes = b"") -> bytes:
    """PAE_Enc(SK, IV, v) with the default backend — the paper's notation."""
    return _DEFAULT.encrypt_with_iv(key, iv, value, aad)


def pae_dec(key: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
    """PAE_Dec(SK, c) with the default backend — the paper's notation."""
    return _DEFAULT.decrypt(key, ciphertext, aad)

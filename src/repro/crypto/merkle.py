"""A classic binary Merkle hash tree.

Used by the Protected File System Library clone
(:mod:`repro.sgx.protected_fs`) to authenticate the 4 KiB chunk array of a
protected file, exactly as Intel's library does.  (The *file-system-wide*
rollback tree of paper Section V-D is a different structure — it lives in
:mod:`repro.core.rollback` and uses multiset hashes.)

Leaves are hashed with a ``0x00`` domain-separation prefix and interior
nodes with ``0x01`` to rule out second-preimage splicing attacks.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import IntegrityError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


class MerkleTree:
    """Merkle tree over an append-able, updatable list of leaf values.

    The tree keeps all levels in memory (lists of digests) so that single
    leaf updates are O(log n) rehashes.  Odd nodes are promoted unchanged,
    the scheme used by Certificate Transparency.
    """

    def __init__(self, leaves: list[bytes] | None = None) -> None:
        self._leaf_hashes: list[bytes] = [hash_leaf(leaf) for leaf in (leaves or [])]
        self._levels: list[list[bytes]] = []
        self._rebuild()

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def _rebuild(self) -> None:
        levels = [list(self._leaf_hashes)]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            nxt = []
            for i in range(0, len(prev), 2):
                if i + 1 < len(prev):
                    nxt.append(hash_node(prev[i], prev[i + 1]))
                else:
                    nxt.append(prev[i])
            levels.append(nxt)
        self._levels = levels

    def root(self) -> bytes:
        """Root digest; the empty tree hashes to SHA-256 of the empty string."""
        if not self._leaf_hashes:
            return hashlib.sha256(b"").digest()
        return self._levels[-1][0]

    def append(self, leaf: bytes) -> None:
        """Append a new leaf (rebuilds the affected path)."""
        self._leaf_hashes.append(hash_leaf(leaf))
        self._rebuild()

    def update(self, index: int, leaf: bytes) -> None:
        """Replace the leaf at ``index`` and rehash only its root path."""
        if not 0 <= index < len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        self._leaf_hashes[index] = hash_leaf(leaf)
        self._levels[0][index] = self._leaf_hashes[index]
        pos = index
        for level in range(len(self._levels) - 1):
            parent = pos // 2
            left = self._levels[level][2 * parent]
            if 2 * parent + 1 < len(self._levels[level]):
                digest = hash_node(left, self._levels[level][2 * parent + 1])
            else:
                digest = left
            self._levels[level + 1][parent] = digest
            pos = parent

    def proof(self, index: int) -> list[tuple[bool, bytes]]:
        """Inclusion proof for leaf ``index`` as (sibling_is_right, digest) pairs."""
        if not 0 <= index < len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        path = []
        pos = index
        for level in self._levels[:-1]:
            sibling = pos ^ 1
            if sibling < len(level):
                path.append((sibling > pos, level[sibling]))
            pos //= 2
        return path

    @staticmethod
    def verify_proof(leaf: bytes, index: int, proof: list[tuple[bool, bytes]], root: bytes) -> None:
        """Check an inclusion proof; raise :class:`IntegrityError` on mismatch."""
        digest = hash_leaf(leaf)
        for sibling_is_right, sibling in proof:
            if sibling_is_right:
                digest = hash_node(digest, sibling)
            else:
                digest = hash_node(sibling, digest)
        if not hmac.compare_digest(digest, root):
            raise IntegrityError("Merkle proof does not match root")

"""HKDF-SHA256 (RFC 5869) and labeled key derivation.

The trusted file manager derives one file key per path from the sealed
root key SK_r (Section IV-B of the paper); the TLS layer derives record
keys from the DH shared secret.  Both go through HKDF so that every
derived key is bound to an explicit, domain-separating label.
"""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = hashlib.sha256().digest_size


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, ikm)."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keyed by ``info``."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    blocks = []
    block = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        blocks.append(block)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(root_key: bytes, label: str, context: bytes = b"", length: int = 32) -> bytes:
    """Derive a subkey from ``root_key`` bound to ``label`` and ``context``.

    Example: the per-file key of the paper is
    ``derive_key(SK_r, "segshare/file-key", path.encode())``.
    """
    prk = hkdf_extract(b"repro.kdf.v1", root_key)
    info = label.encode("utf-8") + b"\x00" + context
    return hkdf_expand(prk, info, length)

"""Galois/Counter Mode (GCM) on top of the pure-Python AES cipher.

Implements AES-GCM per NIST SP 800-38D: CTR-mode encryption with GHASH
authentication over AAD and ciphertext.  GHASH multiplication uses an
8-bit table (256 precomputed multiples of H) for a reasonable pure-Python
speed; it remains the fidelity backend, not the throughput backend.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import Aes
from repro.errors import IntegrityError, KeyError_
from repro.util.encoding import ct_equal

_R = 0xE1000000000000000000000000000000  # GCM reduction polynomial (high bits)


def _build_table(h: int) -> list[list[int]]:
    """Precompute tables[i][b] = (b << (8*i)) * H in GF(2^128).

    With 16 tables of 256 entries each, a GHASH block multiply becomes 16
    table lookups and xors.
    """
    # Single-bit multiples for the least significant byte position: the GCM
    # bit order maps byte value 0x80 to H itself, and each halving of the
    # byte value multiplies by x (shift right with reduction).
    single = {0x80: h}
    v = h
    for bit in (0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01):
        carry = v & 1
        v >>= 1
        if carry:
            v ^= _R
        single[bit] = v
    low = [0] * 256
    for b in range(1, 256):
        acc = 0
        for bit, mult in single.items():
            if b & bit:
                acc ^= mult
        low[b] = acc
    tables = [low]
    for _ in range(15):
        prev = tables[-1]
        nxt = [0] * 256
        for b in range(256):
            v = prev[b]
            # Multiply by x^8: shift right by 8 bits with reduction.
            for _ in range(8):
                carry = v & 1
                v >>= 1
                if carry:
                    v ^= _R
            nxt[b] = v
        tables.append(nxt)
    return tables


class Ghash:
    """Incremental GHASH over 16-byte blocks.

    ``tables`` comes from :func:`_build_table`; callers that hash under the
    same H repeatedly (i.e. :class:`AesGcm`) build it once and share it.
    """

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._y = 0

    @classmethod
    def for_key(cls, h: bytes) -> "Ghash":
        return cls(_build_table(int.from_bytes(h, "big")))

    def update(self, data: bytes) -> None:
        """Absorb ``data``, zero-padded to a multiple of 16 bytes."""
        if len(data) % 16:
            data = data + bytes(16 - len(data) % 16)
        y = self._y
        tables = self._tables
        for offset in range(0, len(data), 16):
            y ^= int.from_bytes(data[offset : offset + 16], "big")
            acc = 0
            # tables[i] holds multiples for the byte 8*i bits below the MSB
            # end (GCM's bit order puts x^0 at the most significant bit).
            for i in range(16):
                acc ^= tables[i][(y >> (120 - 8 * i)) & 0xFF]
            y = acc
        self._y = y

    def digest_with_lengths(self, aad_len: int, ct_len: int) -> bytes:
        """Finalize with the standard 128-bit length block."""
        self.update(struct.pack(">QQ", aad_len * 8, ct_len * 8))
        return self._y.to_bytes(16, "big")


class AesGcm:
    """AES-GCM authenticated encryption for a fixed key.

    The nonce must be 12 bytes (the common fast path: J0 = IV || 0^31 || 1).
    """

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes) -> None:
        self._aes = Aes(key)
        h = self._aes.encrypt_block(bytes(16))
        self._ghash_tables = _build_table(int.from_bytes(h, "big"))

    def _ctr_stream(self, j0: bytes, length: int) -> bytes:
        counter = int.from_bytes(j0, "big")
        blocks = []
        for _ in range((length + 15) // 16):
            counter = (counter & ~0xFFFFFFFF) | ((counter + 1) & 0xFFFFFFFF)
            blocks.append(self._aes.encrypt_block(counter.to_bytes(16, "big")))
        return b"".join(blocks)[:length]

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || 16-byte tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise KeyError_("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        stream = self._ctr_stream(j0, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        ghash = Ghash(self._ghash_tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        s = ghash.digest_with_lengths(len(aad), len(ciphertext))
        tag_mask = self._aes.encrypt_block(j0)
        tag = bytes(a ^ b for a, b in zip(s, tag_mask))
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raise IntegrityError on failure."""
        if len(nonce) != self.NONCE_SIZE:
            raise KeyError_("GCM nonce must be 12 bytes")
        if len(data) < self.TAG_SIZE:
            raise IntegrityError("GCM ciphertext shorter than tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE :]
        ghash = Ghash(self._ghash_tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        s = ghash.digest_with_lengths(len(aad), len(ciphertext))
        j0 = nonce + b"\x00\x00\x00\x01"
        tag_mask = self._aes.encrypt_block(j0)
        expected = bytes(a ^ b for a, b in zip(s, tag_mask))
        if not ct_equal(expected, tag):
            raise IntegrityError("GCM tag mismatch")
        stream = self._ctr_stream(j0, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))

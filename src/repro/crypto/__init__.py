"""From-scratch cryptographic primitives for the SeGShare reproduction.

Everything here is built on the Python standard library only
(``hashlib``, ``hmac``, ``secrets``).  Two authenticated-encryption
backends implement the paper's PAE abstraction:

* :class:`repro.crypto.pae.AesGcmPae` — pure-Python AES-128-GCM, validated
  against NIST test vectors.  Faithful to the paper but slow; use it for
  small data and fidelity tests.
* :class:`repro.crypto.pae.HmacStreamPae` — encrypt-then-MAC AEAD built on a
  SHA-256 counter-mode keystream and HMAC-SHA256.  Fast enough for the
  multi-megabyte benchmark workloads; the default backend.
"""

from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.crypto.mset_hash import MSetXorHash
from repro.crypto.pae import (
    AesGcmPae,
    HmacStreamPae,
    Pae,
    default_pae,
    pae_dec,
    pae_enc,
)

__all__ = [
    "AesGcmPae",
    "HmacStreamPae",
    "MSetXorHash",
    "Pae",
    "default_pae",
    "derive_key",
    "hkdf_expand",
    "hkdf_extract",
    "pae_dec",
    "pae_enc",
]

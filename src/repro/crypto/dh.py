"""Ephemeral finite-field Diffie–Hellman key agreement.

The paper's TLS suite uses ECDHE; elliptic-curve arithmetic from scratch
buys nothing for the reproduction, so we substitute the classic
finite-field construction over the 2048-bit MODP group from RFC 3526
(group 14).  The security-relevant properties the TLS layer needs —
ephemeral per-handshake secrets and forward secrecy — are preserved.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.errors import CryptoError

# RFC 3526, 2048-bit MODP Group (id 14).  Generator 2.
RFC3526_GROUP14_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
RFC3526_GROUP14_GENERATOR = 2


@dataclass(frozen=True)
class DhParams:
    """A Diffie–Hellman group (prime modulus and generator)."""

    p: int
    g: int

    @property
    def size_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8


GROUP14 = DhParams(p=RFC3526_GROUP14_PRIME, g=RFC3526_GROUP14_GENERATOR)


@dataclass(frozen=True)
class DhKeyPair:
    """An ephemeral DH key pair bound to a group."""

    params: DhParams
    private: int
    public: int

    def public_bytes(self) -> bytes:
        return self.public.to_bytes(self.params.size_bytes, "big")


def generate_keypair(params: DhParams = GROUP14) -> DhKeyPair:
    """Generate an ephemeral key pair: x random in [2, p-2], X = g^x mod p."""
    private = secrets.randbelow(params.p - 3) + 2
    public = pow(params.g, private, params.p)
    return DhKeyPair(params=params, private=private, public=public)


def public_from_bytes(data: bytes, params: DhParams = GROUP14) -> int:
    """Parse and validate a peer public value.

    Rejects degenerate values (0, 1, p-1, out of range) that would force
    the shared secret into a tiny subgroup.
    """
    value = int.from_bytes(data, "big")
    if not 2 <= value <= params.p - 2:
        raise CryptoError("invalid DH public value")
    return value


def shared_secret(keypair: DhKeyPair, peer_public: int) -> bytes:
    """Compute the shared secret Y^x mod p as fixed-width big-endian bytes."""
    if not 2 <= peer_public <= keypair.params.p - 2:
        raise CryptoError("invalid DH public value")
    secret = pow(peer_public, keypair.private, keypair.params.p)
    return secret.to_bytes(keypair.params.size_bytes, "big")

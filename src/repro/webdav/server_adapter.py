"""Mapping WebDAV verbs onto the SeGShare request handler.

============  ==========================================================
Verb          SeGShare operation
============  ==========================================================
PUT           put_fC (create/update a content file)
GET           get (file content, or listing when the path is a directory)
MKCOL         put_fD (create a directory)
DELETE        remove
MOVE          move (``Destination`` header)
PROPFIND      stat / listing (``Depth: 0`` = stat, ``Depth: 1`` = listing)
PROPPATCH     the SeGShare extensions, via ``X-SeGShare-*`` headers:
              ``X-SeGShare-Set-Permission: <group> <perms>``,
              ``X-SeGShare-Inherit: 0|1``,
              ``X-SeGShare-Add-Owner: <group>``
============  ==========================================================

The adapter sits *inside* the enclave boundary conceptually (it parses
plaintext requests), so it is intentionally tiny: parse, dispatch to
:class:`repro.core.request_handler.RequestHandler`, render a status.
"""

from __future__ import annotations

from repro.core.request_handler import RequestHandler
from repro.core.requests import Op, Request, Response, StatInfo, Status
from repro.errors import WebDavError
from repro.tls.channel import StreamingResponse
from repro.webdav.http import HttpRequest, HttpResponse, Method


def _status_of(response: Response, created: bool = False) -> HttpResponse:
    if response.status is Status.OK:
        if created:
            return HttpResponse(201, "Created")
        return HttpResponse(200, "OK")
    if response.status is Status.DENIED:
        return HttpResponse(403, "Forbidden")
    return HttpResponse(409, "Conflict", body=response.message.encode("utf-8"))


class WebDavAdapter:
    """Translates WebDAV messages for one authenticated user."""

    def __init__(self, handler: RequestHandler) -> None:
        self._handler = handler

    def _op(self, user_id: str, op: Op, *args: str) -> Response:
        result = self._handler.handle(user_id, Request(op=op, args=args))
        assert isinstance(result, Response)
        return result

    def dispatch(self, user_id: str, request: HttpRequest) -> HttpResponse:
        method = request.method
        if method is Method.PUT:
            response = self._handler.put_file(user_id, request.path, request.body)
            return _status_of(response, created=True)
        if method is Method.MKCOL:
            return _status_of(self._op(user_id, Op.PUT_DIR, request.path), created=True)
        if method is Method.GET:
            return self._get(user_id, request)
        if method is Method.DELETE:
            return _status_of(self._op(user_id, Op.REMOVE, request.path))
        if method is Method.MOVE:
            destination = request.header("destination")
            if destination is None:
                raise WebDavError("MOVE requires a Destination header")
            return _status_of(self._op(user_id, Op.MOVE, request.path, destination))
        if method is Method.PROPFIND:
            return self._propfind(user_id, request)
        if method is Method.PROPPATCH:
            return self._proppatch(user_id, request)
        raise WebDavError(f"unsupported method {method}")

    def _get(self, user_id: str, request: HttpRequest) -> HttpResponse:
        result = self._handler.handle(
            user_id, Request(op=Op.GET, args=(request.path,))
        )
        if isinstance(result, StreamingResponse):
            body = b"".join(result.chunks)
            header = Response.deserialize(result.header)
            if header.status is not Status.OK:
                return _status_of(header)
            return HttpResponse(
                200, "OK", headers={"content-type": "application/octet-stream"}, body=body
            )
        if result.status is Status.OK:
            body = "\n".join(result.listing).encode("utf-8")
            return HttpResponse(200, "OK", headers={"content-type": "text/plain"}, body=body)
        return _status_of(result)

    def _propfind(self, user_id: str, request: HttpRequest) -> HttpResponse:
        depth = request.header("depth", "0")
        if depth == "1" and request.path.endswith("/"):
            result = self._handler.handle(user_id, Request(op=Op.GET, args=(request.path,)))
            if isinstance(result, StreamingResponse) or result.status is not Status.OK:
                return HttpResponse(409, "Conflict")
            body = "\n".join(result.listing).encode("utf-8")
            return HttpResponse(207, "Multi-Status", body=body)
        result = self._op(user_id, Op.STAT, request.path)
        if result.status is not Status.OK:
            return _status_of(result)
        info = StatInfo.deserialize(result.payload)
        kind = "collection" if info.is_dir else "file"
        body = f"{kind} size={info.size} inherit={int(info.inherit)}".encode("utf-8")
        return HttpResponse(207, "Multi-Status", body=body)

    def _proppatch(self, user_id: str, request: HttpRequest) -> HttpResponse:
        permission = request.header("x-segshare-set-permission")
        if permission is not None:
            parts = permission.rsplit(" ", 1)
            if len(parts) == 1 or parts[1] not in ("r", "w", "rw", "deny"):
                group, perms = permission, ""
            else:
                group, perms = parts
            return _status_of(
                self._op(user_id, Op.SET_PERM, request.path, group, perms)
            )
        inherit = request.header("x-segshare-inherit")
        if inherit is not None:
            return _status_of(self._op(user_id, Op.SET_INHERIT, request.path, inherit))
        owner = request.header("x-segshare-add-owner")
        if owner is not None:
            return _status_of(self._op(user_id, Op.ADD_FILE_OWNER, request.path, owner))
        raise WebDavError("PROPPATCH without a recognized X-SeGShare header")

"""A WebDAV client speaking through the SeGShare TLS channel.

The enclave accepts, next to its native binary protocol, WebDAV messages
prefixed with a protocol marker — this client builds them.  It is what a
stock WebDAV client library would look like pointed at SeGShare: the
paper's compatibility claim (§VI), exercised end to end over the real
secure channel.

Bodies travel inside the message (WebDAV has no framing of its own
here); for multi-gigabyte uploads the native client's chunked streaming
is the better tool.
"""

from __future__ import annotations

from repro.tls.channel import TlsClient
from repro.webdav.http import HttpRequest, HttpResponse, Method

#: Marker distinguishing WebDAV payloads from native binary requests.
WEBDAV_MARKER = b"WEBDAV\x00"


class WebDavTlsClient:
    """WebDAV verbs over an established SeGShare TLS session."""

    def __init__(self, tls: TlsClient) -> None:
        self._tls = tls

    def _send(self, request: HttpRequest) -> HttpResponse:
        reply = self._tls.request(WEBDAV_MARKER + request.serialize())
        return HttpResponse.parse(reply)

    def put(self, path: str, body: bytes) -> HttpResponse:
        return self._send(HttpRequest(Method.PUT, path, body=body))

    def get(self, path: str) -> HttpResponse:
        return self._send(HttpRequest(Method.GET, path))

    def mkcol(self, path: str) -> HttpResponse:
        return self._send(HttpRequest(Method.MKCOL, path))

    def delete(self, path: str) -> HttpResponse:
        return self._send(HttpRequest(Method.DELETE, path))

    def move(self, src: str, dst: str) -> HttpResponse:
        return self._send(
            HttpRequest(Method.MOVE, src, headers={"destination": dst})
        )

    def propfind(self, path: str, depth: str = "0") -> HttpResponse:
        return self._send(
            HttpRequest(Method.PROPFIND, path, headers={"depth": depth})
        )

    def set_permission(self, path: str, group: str, perms: str) -> HttpResponse:
        return self._send(
            HttpRequest(
                Method.PROPPATCH,
                path,
                headers={"x-segshare-set-permission": f"{group} {perms}".strip()},
            )
        )

    def set_inherit(self, path: str, inherit: bool) -> HttpResponse:
        return self._send(
            HttpRequest(
                Method.PROPPATCH,
                path,
                headers={"x-segshare-inherit": "1" if inherit else "0"},
            )
        )

"""WebDAV front end (paper Section VI).

The prototype follows the WebDAV standard so existing clients work
unchanged.  This package models the protocol surface SeGShare needs —
GET, PUT, MKCOL, DELETE, MOVE, PROPFIND, plus the permission/group
extension headers — and adapts it onto the SeGShare request handler.
"""

from repro.webdav.client import WebDavTlsClient
from repro.webdav.http import HttpRequest, HttpResponse, Method
from repro.webdav.server_adapter import WebDavAdapter

__all__ = ["HttpRequest", "HttpResponse", "Method", "WebDavAdapter", "WebDavTlsClient"]

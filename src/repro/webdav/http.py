"""A minimal HTTP/WebDAV message model.

Covers what a WebDAV file-sharing client actually sends: the method line,
headers, and body.  Parsing is strict about structure (CRLF lines, a
``Header: value`` per line, Content-Length-delimited body) and tolerant
about header case, per RFC 7230's field-name rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WebDavError

CRLF = b"\r\n"


class Method(enum.Enum):
    GET = "GET"
    PUT = "PUT"
    DELETE = "DELETE"
    MKCOL = "MKCOL"  # create collection (directory)
    MOVE = "MOVE"
    PROPFIND = "PROPFIND"  # directory listing / metadata
    PROPPATCH = "PROPPATCH"  # SeGShare permission extensions


@dataclass
class HttpRequest:
    """One parsed WebDAV request."""

    method: Method
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def serialize(self) -> bytes:
        lines = [f"{self.method.value} {self.path} HTTP/1.1".encode("ascii")]
        headers = dict(self.headers)
        headers["content-length"] = str(len(self.body))
        for name in sorted(headers):
            lines.append(f"{name}: {headers[name]}".encode("ascii"))
        return CRLF.join(lines) + CRLF + CRLF + self.body

    @classmethod
    def parse(cls, raw: bytes) -> "HttpRequest":
        head, _, body = raw.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        if not lines or not lines[0]:
            raise WebDavError("empty request")
        parts = lines[0].decode("ascii", "replace").split(" ")
        if len(parts) != 3 or parts[2] != "HTTP/1.1":
            raise WebDavError(f"malformed request line: {lines[0]!r}")
        try:
            method = Method(parts[0])
        except ValueError:
            raise WebDavError(f"unsupported method {parts[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.decode("ascii", "replace").partition(":")
            if not sep:
                raise WebDavError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        declared = headers.get("content-length")
        if declared is not None and int(declared) != len(body):
            raise WebDavError("Content-Length does not match body size")
        return cls(method=method, path=parts[1], headers=headers, body=body)


@dataclass
class HttpResponse:
    """One WebDAV response."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def serialize(self) -> bytes:
        lines = [f"HTTP/1.1 {self.status} {self.reason}".encode("ascii")]
        headers = dict(self.headers)
        headers["content-length"] = str(len(self.body))
        for name in sorted(headers):
            lines.append(f"{name}: {headers[name]}".encode("ascii"))
        return CRLF.join(lines) + CRLF + CRLF + self.body

    @classmethod
    def parse(cls, raw: bytes) -> "HttpResponse":
        head, _, body = raw.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        parts = lines[0].decode("ascii", "replace").split(" ", 2)
        if len(parts) < 3 or parts[0] != "HTTP/1.1":
            raise WebDavError(f"malformed status line: {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.decode("ascii", "replace").partition(":")
            if not sep:
                raise WebDavError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return cls(status=int(parts[1]), reason=parts[2], headers=headers, body=body)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

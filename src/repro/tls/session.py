"""Established-session record protection.

After the handshake, each direction has its own write key and a record
sequence number.  Every record is PAE-encrypted with the sequence number
and direction label as associated data, so the receiver detects replayed,
reordered, dropped, and cross-direction-reflected records.

``STREAM_CHUNK`` is the fixed chunk size of the paper's streaming design
(Section VI): large payloads cross the channel — and the enclave — in
constant-size pieces, so the enclave never buffers a whole file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import default_pae
from repro.errors import IntegrityError, TlsError
from repro.netsim.clock import SimClock
from repro.tls.handshake import SessionKeys
from repro.util.serialization import Writer

STREAM_CHUNK = 64 * 1024


@dataclass(frozen=True)
class CryptoCostProfile:
    """Virtual-time cost of record crypto at one endpoint.

    The enclave and the client both pay AEAD time per byte; the profile is
    attached per session end so experiments can model asymmetric hardware.
    """

    aead_bytes_per_second: float = 2.8e9
    per_record: float = 1.5e-6


class TlsSession:
    """One endpoint's view of an established TLS session."""

    def __init__(
        self,
        keys: SessionKeys,
        is_client: bool,
        clock: SimClock | None = None,
        costs: CryptoCostProfile | None = None,
        cost_account: str = "tls-crypto",
    ) -> None:
        self._keys = keys
        self._is_client = is_client
        self._send_seq = 0
        self._recv_seq = 0
        self._clock = clock
        self._costs = costs or CryptoCostProfile()
        self._account = cost_account
        self._pae = default_pae()

    def _charge(self, nbytes: int) -> None:
        if self._clock is not None:
            self._clock.charge(
                self._costs.per_record + nbytes / self._costs.aead_bytes_per_second,
                account=self._account,
            )

    def _aad(self, sending: bool, seq: int) -> bytes:
        direction = "c2s" if (sending == self._is_client) else "s2c"
        return Writer().str(direction).u64(seq).take()

    def _send_key(self) -> bytes:
        return self._keys.client_write if self._is_client else self._keys.server_write

    def _recv_key(self) -> bytes:
        return self._keys.server_write if self._is_client else self._keys.client_write

    def protect(self, plaintext: bytes) -> bytes:
        """Encrypt one outgoing record payload."""
        self._charge(len(plaintext))
        aad = self._aad(sending=True, seq=self._send_seq)
        self._send_seq += 1
        return self._pae.encrypt(self._send_key(), plaintext, aad=aad)

    def unprotect(self, ciphertext: bytes) -> bytes:
        """Decrypt one incoming record payload, enforcing sequence order."""
        self._charge(max(0, len(ciphertext) - self._pae.overhead))
        aad = self._aad(sending=False, seq=self._recv_seq)
        try:
            plaintext = self._pae.decrypt(self._recv_key(), ciphertext, aad=aad)
        except IntegrityError as exc:
            raise TlsError(
                "record authentication failed (tampered, replayed, or reordered)"
            ) from exc
        self._recv_seq += 1
        return plaintext

    @property
    def records_sent(self) -> int:
        return self._send_seq

    @property
    def records_received(self) -> int:
        return self._recv_seq


def chunk_payload(payload: bytes, chunk_size: int = STREAM_CHUNK) -> list[bytes]:
    """Split ``payload`` into streaming chunks; empty payloads are one chunk."""
    if not payload:
        return [b""]
    return [payload[i : i + chunk_size] for i in range(0, len(payload), chunk_size)]

"""The split TLS interfaces and the client channel (Fig. 1).

Server side, two halves:

* :class:`UntrustedTlsInterface` — terminates the transport connection in
  the untrusted host.  It forwards opaque records into the enclave
  through a ``forward`` callable (in SeGShare, a switchless ECALL) and
  writes the records the enclave returns back to the wire.  It sees only
  ciphertext.
* :class:`TrustedTlsInterface` — lives inside the enclave.  It runs the
  handshake with the CA-provisioned server identity, validates client
  certificates, decrypts requests, hands them to an application, and
  protects responses.

Client side, :class:`TlsClient` couples a :class:`Connection` with the
handshake and record protection, and exposes ``request`` / ``upload``
with the chunked streaming the paper's Section VI describes.

Messages on the channel are framed as a header record followed by zero
or more chunk records so that neither endpoint ever needs more than one
chunk of buffer per request — the enclave's "small, constant size buffer".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol

import random

from repro.crypto import rsa
from repro.errors import EnclaveCrashed, NetworkError, RetryPolicy, TlsError
from repro.netsim.clock import SimClock
from repro.netsim.transport import Connection
from repro.pki import Certificate
from repro.tls import records
from repro.tls.handshake import (
    ClientHandshake,
    ClientIdentity,
    ServerHandshake,
    ServerIdentity,
)
from repro.tls.records import ContentType
from repro.tls.session import STREAM_CHUNK, CryptoCostProfile, TlsSession, chunk_payload
from repro.util.serialization import Reader, Writer

_KIND_SINGLE = 0
_KIND_STREAM = 1

# Asymmetric handshake costs (virtual seconds) — RSA-2048-class signing,
# verification, and one ephemeral DH exchange per side.
_HS_SIGN = 600e-6
_HS_VERIFY = 20e-6
_HS_DH = 250e-6


def _charge_handshake(clock: SimClock | None, account: str) -> None:
    if clock is not None:
        # One signature, two verifications (peer cert + peer KX), one DH.
        clock.charge(_HS_SIGN + 2 * _HS_VERIFY + _HS_DH, account=account)


def _message_header(kind: int, header_payload: bytes, n_chunks: int, body_len: int) -> bytes:
    return Writer().u8(kind).u32(n_chunks).u64(body_len).bytes(header_payload).take()


def _parse_message_header(data: bytes) -> tuple[int, int, int, bytes]:
    r = Reader(data)
    kind = r.u8()
    n_chunks = r.u32()
    body_len = r.u64()
    header_payload = r.bytes()
    r.expect_end()
    return kind, n_chunks, body_len, header_payload


@dataclass
class StreamingResponse:
    """A response the enclave streams chunk by chunk (e.g. file download)."""

    header: bytes
    chunks: Iterable[bytes]
    body_len: int


class UploadSink(Protocol):
    """Application-side consumer for a streamed upload."""

    def write(self, chunk: bytes) -> None: ...

    def finish(self) -> "bytes | StreamingResponse": ...

    def abort(self) -> None: ...


class TlsApplication(Protocol):
    """What the trusted TLS interface needs from the application layer."""

    def handle_message(self, client_cert: Certificate, payload: bytes) -> "bytes | StreamingResponse":
        """Process a single-payload request; return the response."""

    def open_upload(self, client_cert: Certificate, header: bytes) -> UploadSink:
        """Start consuming a streamed upload announced by ``header``."""


class TrustedTlsInterface:
    """In-enclave TLS endpoint managing many concurrent sessions."""

    def __init__(
        self,
        application: TlsApplication,
        ca_public_key: rsa.RsaPublicKey,
        clock: SimClock | None = None,
        costs: CryptoCostProfile | None = None,
    ) -> None:
        self._application = application
        self._ca_public_key = ca_public_key
        self._clock = clock
        self._costs = costs or CryptoCostProfile()
        self._identity: ServerIdentity | None = None
        self._session_ids = itertools.count(1)
        self._sessions: dict[int, _ServerSession] = {}

    def install_identity(self, identity: ServerIdentity) -> None:
        """Install or replace the server certificate (the CA may re-issue)."""
        self._identity = identity

    @property
    def has_identity(self) -> bool:
        return self._identity is not None

    def new_session(self) -> int:
        """Allocate state for a freshly accepted connection."""
        if self._identity is None:
            raise TlsError("no server certificate installed yet")
        session_id = next(self._session_ids)
        self._sessions[session_id] = _ServerSession(
            handshake=ServerHandshake(self._identity, self._ca_public_key),
            clock=self._clock,
            costs=self._costs,
        )
        return session_id

    def close_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    def on_record(self, session_id: int, raw: bytes) -> list[bytes]:
        """Process one incoming record; returns records to send back.

        Any processing error tears the session down and yields an alert —
        the enclave never leaks details of *why* to the untrusted host.
        """
        session = self._sessions.get(session_id)
        if session is None:
            return [records.alert_record("unknown session")]
        try:
            return session.on_record(raw, self._application)
        except EnclaveCrashed:
            # A fault-injected crash must propagate to the platform layer,
            # not collapse into a TLS alert: the whole enclave is dead.
            raise
        except Exception:
            self.close_session(session_id)
            return [records.alert_record("session error")]


class _ServerSession:
    """Per-connection state inside the trusted interface."""

    def __init__(
        self, handshake: ServerHandshake, clock: SimClock | None, costs: CryptoCostProfile
    ) -> None:
        self._handshake: ServerHandshake | None = handshake
        self._clock = clock
        self._costs = costs
        self._session: TlsSession | None = None
        self._client_cert: Certificate | None = None
        self._hs_step = 0
        # In-flight inbound message state (constant-size: one chunk at a time).
        self._expect_chunks = 0
        self._body_remaining = 0
        self._single_parts: list[bytes] | None = None
        self._upload: UploadSink | None = None

    def on_record(self, raw: bytes, application: TlsApplication) -> list[bytes]:
        if self._session is None:
            return self._handshake_record(raw)
        return self._data_record(raw, application)

    # -- handshake ------------------------------------------------------------

    def _handshake_record(self, raw: bytes) -> list[bytes]:
        assert self._handshake is not None
        payload = records.parse_record(raw, ContentType.HANDSHAKE)
        if self._hs_step == 0:
            reply = self._handshake.handle_client_hello(payload)
            self._hs_step = 1
            return [records.handshake_record(reply)]
        if self._hs_step == 1:
            self._handshake.handle_client_key_exchange(payload)
            self._hs_step = 2
            return []
        if self._hs_step == 2:
            server_finished = self._handshake.verify_client_finished(payload)
            _charge_handshake(self._clock, "enclave-tls")
            assert self._handshake.keys is not None
            self._client_cert = self._handshake.client_certificate
            self._session = TlsSession(
                self._handshake.keys,
                is_client=False,
                clock=self._clock,
                costs=self._costs,
                cost_account="enclave-tls",
            )
            self._handshake = None
            self._hs_step = 3
            return [records.handshake_record(server_finished)]
        raise TlsError("unexpected handshake record")

    # -- application data -------------------------------------------------------

    def _data_record(self, raw: bytes, application: TlsApplication) -> list[bytes]:
        assert self._session is not None and self._client_cert is not None
        ciphertext = records.parse_record(raw, ContentType.APPLICATION_DATA)
        plaintext = self._session.unprotect(ciphertext)

        if self._expect_chunks == 0 and self._upload is None and self._single_parts is None:
            return self._begin_message(plaintext, application)
        return self._continue_message(plaintext, application)

    def _begin_message(self, plaintext: bytes, application: TlsApplication) -> list[bytes]:
        kind, n_chunks, body_len, header_payload = _parse_message_header(plaintext)
        if kind == _KIND_SINGLE:
            if n_chunks == 0:
                response = application.handle_message(self._client_cert, header_payload)
                return self._respond(response)
            self._expect_chunks = n_chunks
            self._body_remaining = body_len
            self._single_parts = [header_payload]
            return []
        if kind == _KIND_STREAM:
            self._upload = application.open_upload(self._client_cert, header_payload)
            self._expect_chunks = n_chunks
            self._body_remaining = body_len
            if n_chunks == 0:
                return self._finish_upload()
            return []
        raise TlsError(f"unknown message kind {kind}")

    def _continue_message(self, chunk: bytes, application: TlsApplication) -> list[bytes]:
        if len(chunk) > self._body_remaining:
            raise TlsError("stream overflow: more bytes than announced")
        self._body_remaining -= len(chunk)
        self._expect_chunks -= 1
        if self._upload is not None:
            self._upload.write(chunk)
            if self._expect_chunks == 0:
                if self._body_remaining != 0:
                    self._upload.abort()
                    raise TlsError("stream underflow: fewer bytes than announced")
                return self._finish_upload()
            return []
        assert self._single_parts is not None
        self._single_parts.append(chunk)
        if self._expect_chunks == 0:
            payload = b"".join(self._single_parts)
            self._single_parts = None
            response = application.handle_message(self._client_cert, payload)
            return self._respond(response)
        return []

    def _finish_upload(self) -> list[bytes]:
        assert self._upload is not None
        sink = self._upload
        self._upload = None
        return self._respond(sink.finish())

    def _respond(self, response: "bytes | StreamingResponse") -> list[bytes]:
        assert self._session is not None
        out = []
        if isinstance(response, StreamingResponse):
            chunks = list(response.chunks)
            header = _message_header(_KIND_STREAM, response.header, len(chunks), response.body_len)
            out.append(records.data_record(self._session.protect(header)))
            for chunk in chunks:
                out.append(records.data_record(self._session.protect(chunk)))
        else:
            header = _message_header(_KIND_SINGLE, response, 0, 0)
            out.append(records.data_record(self._session.protect(header)))
        return out


class UntrustedTlsInterface:
    """The untrusted record forwarder.

    ``forward(session_id, raw) -> list[raw]`` crosses the enclave boundary;
    ``new_session()`` registers a connection with the trusted side.  This
    class never parses beyond the record header.
    """

    def __init__(
        self,
        new_session: Callable[[], int],
        forward: Callable[[int, bytes], list[bytes]],
        close_session: Callable[[int], None] | None = None,
    ) -> None:
        self._new_session = new_session
        self._forward = forward
        self._close_session = close_session
        self.records_forwarded = 0

    def attach(self, conn: Connection) -> None:
        """Bind an accepted connection: every inbound record is forwarded."""
        session_id = self._new_session()

        def receiver(raw: bytes) -> None:
            self.records_forwarded += 1
            first = True
            for reply in self._forward(session_id, raw):
                if first:
                    conn.send(reply)
                    first = False
                else:
                    conn.send_stream(reply)

        conn.set_receiver(receiver)


class TlsClient:
    """The user application's end of the secure channel."""

    def __init__(
        self,
        conn: Connection,
        identity: ClientIdentity,
        ca_public_key: rsa.RsaPublicKey,
        clock: SimClock | None = None,
        costs: CryptoCostProfile | None = None,
        retry: RetryPolicy | None = None,
        retry_seed: int = 0,
    ) -> None:
        self._conn = conn
        self._identity = identity
        self._ca_public_key = ca_public_key
        self._clock = clock
        self._costs = costs or CryptoCostProfile()
        self._session: TlsSession | None = None
        self._retry = retry
        self._retry_rng = random.Random(retry_seed)
        self.server_certificate: Certificate | None = None

    def _send_record(self, record: bytes, stream: bool = False) -> None:
        """Send one record, retrying transient network faults.

        Retrying re-sends the *same ciphertext*: record sequence numbers
        were already consumed by ``protect``, so a dropped record must be
        replayed verbatim — re-encrypting would desynchronise the session.
        Backoff is charged to the simulated clock under ``client-backoff``.
        """
        send = self._conn.send_stream if stream else self._conn.send
        attempt = 1
        while True:
            try:
                send(record)
                return
            except NetworkError:
                if self._retry is None or attempt >= self._retry.attempts:
                    raise
                delay = self._retry.delay(attempt, self._retry_rng)
                if self._clock is not None:
                    self._clock.charge(delay, account="client-backoff")
                attempt += 1

    def handshake(self) -> None:
        """Run the full handshake; afterwards the channel is ready."""
        hs = ClientHandshake(self._identity, self._ca_public_key)
        self._send_record(records.handshake_record(hs.client_hello()))
        server_hello = records.parse_record(self._conn.recv(), ContentType.HANDSHAKE)
        kx = hs.handle_server_hello(server_hello)
        self._send_record(records.handshake_record(kx))
        self._send_record(records.handshake_record(hs.client_finished()))
        server_finished = records.parse_record(self._conn.recv(), ContentType.HANDSHAKE)
        hs.verify_server_finished(server_finished)
        _charge_handshake(self._clock, "client-crypto")
        assert hs.keys is not None
        self.server_certificate = hs.server_certificate
        self._session = TlsSession(
            hs.keys,
            is_client=True,
            clock=self._clock,
            costs=self._costs,
            cost_account="client-crypto",
        )

    def _require_session(self) -> TlsSession:
        if self._session is None:
            raise TlsError("handshake has not completed")
        return self._session

    # -- sending ----------------------------------------------------------------

    def request(self, payload: bytes) -> bytes:
        """Send a control request; returns the single response payload, or
        the reassembled body for streamed responses."""
        header, body = self.request_full(payload)
        return body if body else header

    def request_full(self, payload: bytes) -> tuple[bytes, bytes]:
        """Send a control request; returns ``(header_payload, body)``.

        Single responses come back as ``(payload, b"")``; streamed
        responses as ``(header, reassembled_body)``.
        """
        session = self._require_session()
        chunks = chunk_payload(payload) if len(payload) > STREAM_CHUNK else []
        if chunks:
            header = _message_header(_KIND_SINGLE, b"", len(chunks), len(payload))
            self._send_record(records.data_record(session.protect(header)))
            for chunk in chunks:
                self._send_record(records.data_record(session.protect(chunk)), stream=True)
        else:
            header = _message_header(_KIND_SINGLE, payload, 0, 0)
            self._send_record(records.data_record(session.protect(header)))
        return self._read_response()

    def upload(self, header_payload: bytes, content: bytes | Iterator[bytes]) -> bytes:
        """Stream an upload; returns the single response payload."""
        header, body = self.upload_full(header_payload, content)
        return body if body else header

    def upload_full(
        self, header_payload: bytes, content: bytes | Iterator[bytes]
    ) -> tuple[bytes, bytes]:
        """Stream an upload: a header followed by fixed-size content chunks."""
        session = self._require_session()
        if isinstance(content, bytes):
            chunks = chunk_payload(content) if content else []
            body_len = len(content)
        else:
            chunks = list(content)
            body_len = sum(len(c) for c in chunks)
        header = _message_header(_KIND_STREAM, header_payload, len(chunks), body_len)
        self._send_record(records.data_record(session.protect(header)))
        for chunk in chunks:
            self._send_record(records.data_record(session.protect(chunk)), stream=True)
        return self._read_response()

    # -- receiving ---------------------------------------------------------------

    def _read_response(self) -> tuple[bytes, bytes]:
        session = self._require_session()
        ciphertext = records.parse_record(self._conn.recv(), ContentType.APPLICATION_DATA)
        kind, n_chunks, body_len, header_payload = _parse_message_header(
            session.unprotect(ciphertext)
        )
        if kind == _KIND_SINGLE:
            return header_payload, b""
        parts = []
        received = 0
        for _ in range(n_chunks):
            raw = records.parse_record(self._conn.recv(), ContentType.APPLICATION_DATA)
            chunk = session.unprotect(raw)
            received += len(chunk)
            parts.append(chunk)
        if received != body_len:
            raise TlsError("streamed response length mismatch")
        return header_payload, b"".join(parts)

    def close(self) -> None:
        self._conn.close()

"""SGX-enabled TLS stack (paper Section VI, Fig. 1).

A TLS-1.2-shaped protocol with the paper's trust split:

* the **untrusted TLS interface** terminates the transport connection and
  shuttles opaque records — it never sees keys or plaintext;
* the **trusted TLS interface** inside the enclave performs the handshake
  with the CA-issued server certificate, verifies the client certificate,
  and encrypts/decrypts every record — the secure channel genuinely ends
  inside the enclave.

The handshake signs an ephemeral finite-field DH exchange with both
certificates (mutual authentication), derives per-direction record keys
with HKDF, and exchanges Finished MACs over the transcript.  Records are
protected with the PAE backend using the record sequence number as
associated data, so reordering, replay, and truncation are all detected.
"""

from repro.tls.channel import TlsClient, TrustedTlsInterface, UntrustedTlsInterface
from repro.tls.handshake import ClientIdentity, ServerIdentity
from repro.tls.records import ContentType, TlsRecord
from repro.tls.session import STREAM_CHUNK, TlsSession

__all__ = [
    "STREAM_CHUNK",
    "ClientIdentity",
    "ContentType",
    "ServerIdentity",
    "TlsClient",
    "TlsRecord",
    "TlsSession",
    "TrustedTlsInterface",
    "UntrustedTlsInterface",
]

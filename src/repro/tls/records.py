"""TLS record framing.

A record is ``content_type (u8) || length (u32) || payload``.  Handshake
records carry plaintext handshake messages; application-data records carry
PAE ciphertext.  The untrusted terminator only ever parses this framing —
payloads stay opaque to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TlsError
from repro.util.serialization import Reader, Writer


class ContentType(enum.IntEnum):
    HANDSHAKE = 22
    APPLICATION_DATA = 23
    ALERT = 21


@dataclass(frozen=True)
class TlsRecord:
    """One framed TLS record."""

    content_type: ContentType
    payload: bytes

    def serialize(self) -> bytes:
        return Writer().u8(int(self.content_type)).bytes(self.payload).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "TlsRecord":
        r = Reader(data)
        try:
            content_type = ContentType(r.u8())
        except ValueError as exc:
            raise TlsError(f"unknown record content type: {exc}") from exc
        payload = r.bytes()
        r.expect_end()
        return cls(content_type=content_type, payload=payload)


def handshake_record(payload: bytes) -> bytes:
    return TlsRecord(ContentType.HANDSHAKE, payload).serialize()


def data_record(payload: bytes) -> bytes:
    return TlsRecord(ContentType.APPLICATION_DATA, payload).serialize()


def alert_record(message: str) -> bytes:
    return TlsRecord(ContentType.ALERT, message.encode("utf-8")).serialize()


def parse_record(data: bytes, expected: ContentType) -> bytes:
    """Parse a record and require its content type; alerts raise TlsError."""
    record = TlsRecord.deserialize(data)
    if record.content_type is ContentType.ALERT:
        raise TlsError(f"peer sent alert: {record.payload.decode('utf-8', 'replace')}")
    if record.content_type is not expected:
        raise TlsError(
            f"expected {expected.name} record, got {record.content_type.name}"
        )
    return record.payload

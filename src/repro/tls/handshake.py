"""The mutually-authenticated handshake.

Message flow (a compressed TLS 1.2 with client authentication)::

    Client                                   Server (trusted interface)
    ClientHello {client_random,
                 client_certificate}  ---->
                                      <----  ServerHello {server_random,
                                             server_certificate, dh_public,
                                             signature(randoms || dh_public)}
    ClientKeyExchange {dh_public,
        signature(randoms || both dh
        publics)}                     ---->
    Finished {transcript MAC}         ---->
                                      <----  Finished {transcript MAC}

Both sides derive ``client_write_key``/``server_write_key`` from the DH
shared secret and the two randoms via HKDF.  The server signs with the
private key whose certificate the CA provisioned during attestation, so a
client that trusts the CA's public key knows the far end is a genuine
SeGShare enclave *without* running remote attestation itself — the
property the paper highlights in Section IV-A.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto import dh, rsa
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.errors import CertificateError, TlsError
from repro.pki import Certificate, CertificateUsage
from repro.util.serialization import Reader, Writer

RANDOM_SIZE = 32


@dataclass(frozen=True)
class ClientIdentity:
    """A user's authentication token: certificate plus private key (P1 —
    this is the *only* client-side state SeGShare requires)."""

    certificate: Certificate
    private_key: rsa.RsaPrivateKey


@dataclass(frozen=True)
class ServerIdentity:
    """The enclave's server certificate and the matching temporary key pair."""

    certificate: Certificate
    private_key: rsa.RsaPrivateKey


@dataclass(frozen=True)
class SessionKeys:
    """Directional record keys derived from the handshake."""

    client_write: bytes
    server_write: bytes


@dataclass(frozen=True)
class ClientHello:
    client_random: bytes
    certificate: Certificate

    def serialize(self) -> bytes:
        return Writer().bytes(self.client_random).bytes(self.certificate.serialize()).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "ClientHello":
        r = Reader(data)
        random = r.bytes()
        certificate = Certificate.deserialize(r.bytes())
        r.expect_end()
        if len(random) != RANDOM_SIZE:
            raise TlsError("bad client random size")
        return cls(client_random=random, certificate=certificate)


@dataclass(frozen=True)
class ServerHello:
    server_random: bytes
    certificate: Certificate
    dh_public: bytes
    signature: bytes

    def serialize(self) -> bytes:
        return (
            Writer()
            .bytes(self.server_random)
            .bytes(self.certificate.serialize())
            .bytes(self.dh_public)
            .bytes(self.signature)
            .take()
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "ServerHello":
        r = Reader(data)
        msg = cls(
            server_random=r.bytes(),
            certificate=Certificate.deserialize(r.bytes()),
            dh_public=r.bytes(),
            signature=r.bytes(),
        )
        r.expect_end()
        return msg


@dataclass(frozen=True)
class ClientKeyExchange:
    dh_public: bytes
    signature: bytes

    def serialize(self) -> bytes:
        return Writer().bytes(self.dh_public).bytes(self.signature).take()

    @classmethod
    def deserialize(cls, data: bytes) -> "ClientKeyExchange":
        r = Reader(data)
        msg = cls(dh_public=r.bytes(), signature=r.bytes())
        r.expect_end()
        return msg


def _server_signing_input(client_random: bytes, server_random: bytes, dh_public: bytes) -> bytes:
    return Writer().raw(b"tls-server-kx\x00").bytes(client_random).bytes(server_random).bytes(dh_public).take()


def _client_signing_input(
    client_random: bytes, server_random: bytes, server_dh: bytes, client_dh: bytes
) -> bytes:
    return (
        Writer()
        .raw(b"tls-client-kx\x00")
        .bytes(client_random)
        .bytes(server_random)
        .bytes(server_dh)
        .bytes(client_dh)
        .take()
    )


def derive_session_keys(shared_secret: bytes, client_random: bytes, server_random: bytes) -> SessionKeys:
    prk = hkdf_extract(client_random + server_random, shared_secret)
    material = hkdf_expand(prk, b"tls-record-keys", 32)
    return SessionKeys(client_write=material[:16], server_write=material[16:32])


def finished_mac(keys: SessionKeys, transcript: bytes, sender: str) -> bytes:
    """MAC over the handshake transcript, keyed per direction."""
    key = keys.client_write if sender == "client" else keys.server_write
    return derive_key(key, f"tls-finished/{sender}", transcript, length=32)


class ClientHandshake:
    """Client-side handshake state machine."""

    def __init__(self, identity: ClientIdentity, ca_public_key: rsa.RsaPublicKey) -> None:
        self._identity = identity
        self._ca_public_key = ca_public_key
        self._client_random = secrets.token_bytes(RANDOM_SIZE)
        self._dh_keypair = dh.generate_keypair()
        self._transcript = b""
        self.keys: SessionKeys | None = None
        self.server_certificate: Certificate | None = None

    def client_hello(self) -> bytes:
        message = ClientHello(self._client_random, self._identity.certificate).serialize()
        self._transcript += message
        return message

    def handle_server_hello(self, data: bytes) -> bytes:
        """Process the ServerHello; returns the ClientKeyExchange message."""
        self._transcript += data
        hello = ServerHello.deserialize(data)
        try:
            hello.certificate.verify(self._ca_public_key)
            hello.certificate.require_usage(CertificateUsage.SERVER)
        except CertificateError as exc:
            raise TlsError(f"server certificate rejected: {exc}") from exc
        signing_input = _server_signing_input(
            self._client_random, hello.server_random, hello.dh_public
        )
        if not rsa.verify(hello.certificate.public_key, signing_input, hello.signature):
            raise TlsError("server key-exchange signature is invalid")
        self.server_certificate = hello.certificate

        client_dh = self._dh_keypair.public_bytes()
        signature = rsa.sign(
            self._identity.private_key,
            _client_signing_input(
                self._client_random, hello.server_random, hello.dh_public, client_dh
            ),
        )
        kx = ClientKeyExchange(dh_public=client_dh, signature=signature).serialize()
        self._transcript += kx

        peer = dh.public_from_bytes(hello.dh_public)
        secret = dh.shared_secret(self._dh_keypair, peer)
        self.keys = derive_session_keys(secret, self._client_random, hello.server_random)
        return kx

    def client_finished(self) -> bytes:
        if self.keys is None:
            raise TlsError("handshake not ready for Finished")
        mac = finished_mac(self.keys, self._transcript, "client")
        self._transcript += mac
        return mac

    def verify_server_finished(self, data: bytes) -> None:
        if self.keys is None:
            raise TlsError("handshake not ready for Finished")
        expected = finished_mac(self.keys, self._transcript, "server")
        if not secrets.compare_digest(expected, data):
            raise TlsError("server Finished MAC mismatch")


class ServerHandshake:
    """Server-side (in-enclave) handshake state machine."""

    def __init__(self, identity: ServerIdentity, ca_public_key: rsa.RsaPublicKey) -> None:
        self._identity = identity
        self._ca_public_key = ca_public_key
        self._server_random = secrets.token_bytes(RANDOM_SIZE)
        self._dh_keypair = dh.generate_keypair()
        self._transcript = b""
        self._client_random: bytes | None = None
        self.keys: SessionKeys | None = None
        self.client_certificate: Certificate | None = None

    def handle_client_hello(self, data: bytes) -> bytes:
        """Validate the client certificate and produce the ServerHello."""
        self._transcript += data
        hello = ClientHello.deserialize(data)
        try:
            hello.certificate.verify(self._ca_public_key)
            hello.certificate.require_usage(CertificateUsage.CLIENT)
        except CertificateError as exc:
            raise TlsError(f"client certificate rejected: {exc}") from exc
        self.client_certificate = hello.certificate
        self._client_random = hello.client_random

        dh_public = self._dh_keypair.public_bytes()
        signature = rsa.sign(
            self._identity.private_key,
            _server_signing_input(hello.client_random, self._server_random, dh_public),
        )
        reply = ServerHello(
            server_random=self._server_random,
            certificate=self._identity.certificate,
            dh_public=dh_public,
            signature=signature,
        ).serialize()
        self._transcript += reply
        return reply

    def handle_client_key_exchange(self, data: bytes) -> None:
        if self.client_certificate is None or self._client_random is None:
            raise TlsError("ClientKeyExchange before ClientHello")
        self._transcript += data
        kx = ClientKeyExchange.deserialize(data)
        signing_input = _client_signing_input(
            self._client_random,
            self._server_random,
            self._dh_keypair.public_bytes(),
            kx.dh_public,
        )
        if not rsa.verify(self.client_certificate.public_key, signing_input, kx.signature):
            raise TlsError("client key-exchange signature is invalid")
        peer = dh.public_from_bytes(kx.dh_public)
        secret = dh.shared_secret(self._dh_keypair, peer)
        self.keys = derive_session_keys(secret, self._client_random, self._server_random)

    def verify_client_finished(self, data: bytes) -> bytes:
        """Check the client's Finished MAC; returns the server Finished."""
        if self.keys is None:
            raise TlsError("handshake not ready for Finished")
        expected = finished_mac(self.keys, self._transcript, "client")
        if not secrets.compare_digest(expected, data):
            raise TlsError("client Finished MAC mismatch")
        self._transcript += data
        return finished_mac(self.keys, self._transcript, "server")

#!/usr/bin/env python
"""Head-to-head revocation benchmark: enclave ACLs vs IBBE-SGX envelopes.

The paper's central systems claim (§VII-B, Table on related work): because
the enclave *enforces* access control, SeGShare revokes a member with ONE
member-list update — constant in group size — while cryptographic group
access control (IBBE-SGX and the hybrid-encryption family) must re-key
the group on every revocation: a fresh group key plus an envelope for
every remaining member, O(|group|) now, and lazy re-encryption of every
affected file later.

This bench runs the SAME revocation workload against both pluggable
authorization backends (``SeGShareOptions.authz_backend``) over group
sizes 10^2–10^5, on the full protection stack (journal + whole-fs
rollback guard + ROTE counters + metadata cache) and the calibrated
Azure virtual clock, so every cell's latency carries the same modeled
crypto/storage/counter costs the figure reproductions use.  Each cell
also records the backend's own operation counters
(``stats()["authz"]``) and, for IBBE, the reconcile pass that settles
the deferred re-encryption debt.

Results land in ``BENCH_revocation.json``.  Exit status is non-zero if
the claim fails to reproduce: ACL revocation must stay flat — costing
no more than a membership *add* at the same size, which cancels the
protection stack's own O(users) read-verification term both backends
pay — IBBE revocation must grow with the group, and the two must
separate clearly at the largest size (the ``--quick`` CI gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.workloads import KB, unique_bytes  # noqa: E402
from repro.core.enclave_app import SeGShareOptions  # noqa: E402
from repro.core.requests import Op, Request, Status  # noqa: E402
from repro.core.server import SeGShareServer  # noqa: E402
from repro.netsim import azure_wan_env  # noqa: E402
from repro.pki import CertificateAuthority  # noqa: E402

#: One CA for every server: RSA keygen dominates setup and is unmeasured.
_CA = CertificateAuthority(key_bits=1024)

BACKENDS = ("enclave_acl", "ibbe")
FULL_SIZES = (100, 1_000, 10_000, 100_000)
QUICK_SIZES = (100, 400, 1_600)

#: Files the group is granted before the revocations: the reconcile
#: column measures the deferred re-encryption debt they accumulate.
FILES = 4
FILE_SIZE = 8 * KB
#: Distinct members revoked (and fresh users added) per cell; latencies
#: are the per-operation averages.
OPS = 3


def build_server(backend: str, members: int) -> SeGShareServer:
    options = SeGShareOptions(
        rollback="whole_fs",
        counter_kind="rote",
        # A production deployment sizes guard buckets to its repository;
        # fixed buckets over 10^5 member-list leaves would measure the
        # guard's bucket rehash, not the authorization backend.
        rollback_buckets=max(16, members // 64),
        journal=True,
        metadata_cache_bytes=512 * 1024,
        authz_backend=backend,
    )
    return SeGShareServer(azure_wan_env(), _CA.public_key, options=options)


def virtual_time(server: SeGShareServer, fn) -> float:
    clock = server.env.clock
    start = clock.now()
    fn()
    return clock.now() - start


def ok(response) -> None:
    assert response.status is Status.OK, response


def run_cell(backend: str, members: int) -> dict:
    server = build_server(backend, members)
    handler = server.enclave.handler
    # Bulk-seeded membership (the measured operations below go through
    # the full request path; seeding 10^5 members one request at a time
    # would only measure Python overhead).
    roster = [f"m{i}" for i in range(members)]
    server.enclave.access.bootstrap_group("admin", "team", roster)
    for i in range(FILES):
        ok(handler.put_file("admin", f"/t{i}.dat", unique_bytes("rev", i, FILE_SIZE)))
        ok(
            handler.handle(
                "admin", Request(op=Op.SET_PERM, args=(f"/t{i}.dat", "team", "r"))
            )
        )

    add_s = [
        virtual_time(
            server,
            lambda i=i: ok(
                handler.handle(
                    "admin", Request(op=Op.ADD_USER, args=(f"extra{i}", "team"))
                )
            ),
        )
        for i in range(OPS)
    ]
    revoke_s = [
        virtual_time(
            server,
            lambda i=i: ok(
                handler.handle(
                    "admin", Request(op=Op.RMV_USER, args=(f"m{i + 1}", "team"))
                )
            ),
        )
        for i in range(OPS)
    ]
    reconcile_s = virtual_time(server, server.authz_reconcile)
    # A second pass must find the debt settled; its report is part of
    # the cell so the JSON shows reconcile is not a recurring tax.
    report = server.authz_reconcile()

    stats = server.stats()["authz"]
    return {
        "backend": backend,
        "members": members,
        "add_ms": sum(add_s) / OPS * 1e3,
        "revoke_ms": sum(revoke_s) / OPS * 1e3,
        "reconcile_ms": reconcile_s * 1e3,
        "reconcile_idempotent": report,
        "counters": {k: v for k, v in stats.items() if k != "backend"},
    }


def check_gates(cells: list[dict], sizes: tuple[int, ...]) -> list[dict]:
    """The reproduction claims, as pass/fail gates.

    The flatness gate is *normalized*: at 10^5 registered users the
    shared protection stack itself (the flat-store guard's per-read
    bucket verification walks the user registry) contributes an
    O(users) term that BOTH backends pay on EVERY membership operation
    — it shows up identically in ``add_ms``.  The paper's claim is
    about revocation-specific work, so the gate compares each
    backend's revoke against its own add at the same size: for the
    ACL backend a revocation must cost no more than any other O(1)
    member-list update, while IBBE's ratio grows with the group.
    """
    by = {(c["backend"], c["members"]): c for c in cells}
    lo, hi = sizes[0], sizes[-1]
    acl_norm = max(
        by["enclave_acl", size]["revoke_ms"] / by["enclave_acl", size]["add_ms"]
        for size in sizes
    )
    ibbe_ratio = by["ibbe", hi]["revoke_ms"] / by["ibbe", lo]["revoke_ms"]
    separation = by["ibbe", hi]["revoke_ms"] / by["enclave_acl", hi]["revoke_ms"]
    gates = [
        {
            "name": "acl_revocation_flat",
            "detail": (
                "O(1) metadata: at every size an ACL revoke costs at most "
                f"{acl_norm:.2f}x an ACL membership add"
            ),
            "value": acl_norm,
            "passed": acl_norm <= 1.5,
        },
        {
            "name": "ibbe_revocation_grows",
            "detail": (
                f"O(|group|) re-key: {lo} -> {hi} members grew {ibbe_ratio:.2f}x "
                f"(group grew {hi / lo:.0f}x)"
            ),
            "value": ibbe_ratio,
            "passed": ibbe_ratio >= (hi / lo) / 5,
        },
        {
            "name": "backends_separate",
            "detail": f"at {hi} members IBBE revoke is {separation:.1f}x the ACL cost",
            "value": separation,
            "passed": separation >= 10.0,
        },
        {
            "name": "ibbe_rekeys_counted",
            "detail": "every IBBE cell counted its re-keys and wrapped envelopes",
            "value": min(
                by["ibbe", size]["counters"]["rekeys"] for size in sizes
            ),
            "passed": all(
                by["ibbe", size]["counters"]["rekeys"] >= OPS
                and by["ibbe", size]["counters"]["member_envelopes_wrapped"]
                >= size
                for size in sizes
            ),
        },
        {
            "name": "acl_no_crypto_work",
            "detail": "the ACL backend never re-keyed or re-encrypted anything",
            "value": max(
                by["enclave_acl", size]["counters"]["rekeys"]
                + by["enclave_acl", size]["counters"]["bytes_reencrypted"]
                for size in sizes
            ),
            "passed": all(
                by["enclave_acl", size]["counters"]["rekeys"] == 0
                and by["enclave_acl", size]["counters"]["bytes_reencrypted"] == 0
                for size in sizes
            ),
        },
    ]
    return gates


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI sizes (1e2–1.6e3) instead of the full 1e2–1e5 sweep",
    )
    parser.add_argument("--out", default="BENCH_revocation.json")
    args = parser.parse_args()

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    cells: list[dict] = []
    for backend in BACKENDS:
        for members in sizes:
            cell = run_cell(backend, members)
            cells.append(cell)
            print(
                f"{backend:12s} members={members:7d}  "
                f"add={cell['add_ms']:9.3f}ms  "
                f"revoke={cell['revoke_ms']:10.3f}ms  "
                f"reconcile={cell['reconcile_ms']:9.3f}ms"
            )

    gates = check_gates(cells, sizes)
    result = {
        "workload": {
            "sizes": list(sizes),
            "files_granted": FILES,
            "file_size": FILE_SIZE,
            "ops_per_cell": OPS,
            "stack": "journal + whole_fs rollback + rote counters + metadata cache",
            "clock": "virtual (calibrated Azure WAN cost model)",
        },
        "cells": cells,
        "gates": gates,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")

    failed = [gate for gate in gates if not gate["passed"]]
    for gate in gates:
        marker = "PASS" if gate["passed"] else "FAIL"
        print(f"[{marker}] {gate['name']}: {gate['detail']}")
    print(f"wrote {args.out} ({len(cells)} cells)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E3 / Fig. 4 — dynamic membership/permission ops vs prior count.

The paper's claim: latency is flat (only a logarithmic in-file search)
up to 1000 prior memberships/permissions.  Benchmarks at two prior
counts; the shape assertion lives in tests/bench/test_figures.py and the
full sweep in ``python -m repro.bench fig4 --full``.
"""

import pytest

from repro.core.model import default_group


def _deployment_with_memberships(make_deployment, prior):
    deployment = make_deployment()
    admin = deployment.new_user("admin")
    for i in range(prior):
        admin.add_user("bob", f"g{i}")
    admin.add_user("nobody", "extra")
    return deployment, deployment.user_identity("admin")


@pytest.mark.parametrize("prior", [1, 200])
def test_membership_toggle(benchmark, make_deployment, prior):
    deployment, identity = _deployment_with_memberships(make_deployment, prior)

    def toggle():
        conn = deployment.connect(identity)
        conn.add_user("bob", "extra")
        conn.remove_user("bob", "extra")

    benchmark(toggle)


@pytest.mark.parametrize("prior", [1, 200])
def test_permission_toggle(benchmark, make_deployment, prior):
    deployment = make_deployment()
    admin = deployment.new_user("admin")
    admin.add_user("nobody", "extra")
    admin.upload("/shared.dat", bytes(10_000))
    for i in range(prior):
        admin.set_permission("/shared.dat", default_group(f"px{i}"), "r")
    identity = deployment.user_identity("admin")

    def toggle():
        conn = deployment.connect(identity)
        conn.set_permission("/shared.dat", "extra", "rw")
        conn.set_permission("/shared.dat", "extra", "")

    benchmark(toggle)

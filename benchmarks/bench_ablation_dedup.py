"""A3a — deduplication: ingest cost and storage savings."""

import pytest

from repro.bench.workloads import unique_bytes
from repro.core.enclave_app import SeGShareOptions

FILE_SIZE = 100_000


@pytest.mark.parametrize("dedup", [False, True], ids=["plain", "dedup"])
def test_upload_unique_content(benchmark, make_deployment, dedup):
    deployment = make_deployment(SeGShareOptions(enable_dedup=dedup))
    client = deployment.new_user("u")
    counter = iter(range(100_000))

    def upload():
        i = next(counter)
        client.upload(f"/u{i}.dat", unique_bytes("dd", i, FILE_SIZE))

    benchmark(upload)


def test_upload_duplicate_content(benchmark, make_deployment):
    """Re-uploading known content costs hashing + a pointer record only."""
    deployment = make_deployment(SeGShareOptions(enable_dedup=True))
    client = deployment.new_user("u")
    data = unique_bytes("dd-dup", 0, FILE_SIZE)
    client.upload("/first.dat", data)
    counter = iter(range(100_000))
    benchmark(lambda: client.upload(f"/dup{next(counter)}.dat", data))
    totals = deployment.server.enclave.manager.stored_bytes()
    benchmark.extra_info["dedup_store_bytes"] = totals["dedup"]
    benchmark.extra_info["objects"] = deployment.server.enclave.manager.dedup.object_count()
    assert deployment.server.enclave.manager.dedup.object_count() == 1

"""A2 — the bucket-hash optimization of the rollback tree (§V-D).

With one bucket per node, every verified read rehashes ALL siblings;
with many buckets, only the target's bucket.  Uploads stay O(depth)
either way thanks to the multiset hashes.
"""

import pytest

from repro.bench.workloads import flat_paths, unique_bytes
from repro.core.enclave_app import SeGShareOptions

FILES = 127
FILE_SIZE = 10_000


def _populated(make_deployment, buckets):
    deployment = make_deployment(
        SeGShareOptions(rollback="individual", rollback_buckets=buckets)
    )
    handler = deployment.server.enclave.handler
    for i, path in enumerate(flat_paths(FILES)):
        handler.put_file("seeder", path, unique_bytes("mset", i, FILE_SIZE))
    client = deployment.new_user("u")
    client.upload("/probe.dat", unique_bytes("mset-probe", 0, FILE_SIZE))
    return client


@pytest.mark.parametrize("buckets", [1, 64])
def test_verified_download(benchmark, make_deployment, buckets):
    client = _populated(make_deployment, buckets)
    benchmark(lambda: client.download("/probe.dat"))


@pytest.mark.parametrize("buckets", [1, 64])
def test_guarded_upload(benchmark, make_deployment, buckets):
    client = _populated(make_deployment, buckets)
    data = unique_bytes("mset-up", 0, FILE_SIZE)
    counter = iter(range(100_000))
    benchmark(lambda: client.upload(f"/up{next(counter)}.dat", data))

"""E5 / §VII-B — storage overhead of encrypted file + ACL.

Times the measurement pipeline and reports the overhead percentages via
``extra_info`` (paper: 1.12 %/1.48 % at 10 MB with 95/1119 ACL entries;
1.05 %/1.06 % at 200 MB).  Full numbers:
``python -m repro.bench storage --full``.
"""

import pytest

from repro.bench.workloads import MB, pseudo_bytes
from repro.core.acl import acl_path
from repro.core.model import default_group

SIZE = 5 * MB
ACL_ENTRIES = 95


@pytest.mark.parametrize("entries", [ACL_ENTRIES, 1119])
def test_storage_overhead(benchmark, make_deployment, entries):
    deployment = make_deployment()
    handler = deployment.server.enclave.handler
    manager = deployment.server.enclave.manager
    data = pseudo_bytes("bench-storage", SIZE)
    handler.put_file("owner", "/f.dat", data)
    for i in range(entries - 1):
        handler.set_permission("owner", "/f.dat", default_group(f"g{i}"), "r")

    def measure():
        stored = manager.content_stored_size("/f.dat")
        stored += manager._content.stored_size(manager._sp(acl_path("/f.dat")))
        return stored

    stored = benchmark(measure)
    overhead_pct = 100 * (stored - SIZE) / SIZE
    benchmark.extra_info["plain_bytes"] = SIZE
    benchmark.extra_info["stored_bytes"] = stored
    benchmark.extra_info["overhead_pct"] = round(overhead_pct, 3)
    assert 0.5 < overhead_pct < 3.0  # the paper's ~1% regime

"""E7 — the enclave TCB report (paper: 8441 LoC incl. 2376 of TLS glue)."""

from repro.core.enclave_app import SeGShareEnclave


def test_tcb_report(benchmark, make_deployment):
    deployment = make_deployment()
    report = benchmark(deployment.server.enclave.tcb_loc_report)
    benchmark.extra_info["tcb_loc_total"] = report.total
    benchmark.extra_info["tcb_modules"] = len(report.per_module)
    tls_loc = sum(
        loc for name, loc in report.per_module.items() if name.startswith("repro.tls")
    )
    benchmark.extra_info["tcb_loc_tls"] = tls_loc
    assert set(SeGShareEnclave.TCB_MODULES) <= set(report.per_module)
    assert report.total < 10_000  # same "small TCB" regime as the paper

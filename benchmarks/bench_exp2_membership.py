"""E2 / §VII-B — membership addition and revocation (first group).

The paper: 154.05 ms add / 153.40 ms revoke, independent of stored files,
permissions, and file sizes.  Wall time here covers the full request path
(fresh TLS connection + the one member-list update).
"""

import pytest


@pytest.fixture()
def deployment(make_deployment):
    return make_deployment()


def test_membership_add(benchmark, deployment):
    identity = deployment.user_identity("owner")
    counter = iter(range(100_000))

    def add():
        i = next(counter)
        deployment.connect(identity).add_user(f"user{i}", f"group{i}")

    benchmark(add)


def test_membership_revoke(benchmark, deployment):
    identity = deployment.user_identity("owner")
    owner = deployment.connect(identity)
    ids = iter(range(100_000))
    for i in range(512):
        owner.add_user(f"user{i}", f"group{i}")

    def revoke():
        i = next(ids)
        deployment.connect(identity).remove_user(f"user{i}", f"group{i}")

    benchmark(revoke)


def test_membership_add_with_busy_share(benchmark, make_deployment):
    """The independence claim: same operation, share full of files."""
    deployment = make_deployment()
    seeder = deployment.new_user("owner")
    for i in range(40):
        seeder.upload(f"/seed{i}", bytes(10_000))
    identity = deployment.user_identity("owner")
    counter = iter(range(100_000))

    def add():
        i = next(counter)
        deployment.connect(identity).add_user(f"user{i}", f"group{i}")

    benchmark(add)

"""E2 / §VII-B — membership addition and revocation (first group).

The paper: 154.05 ms add / 153.40 ms revoke, independent of stored files,
permissions, and file sizes.  Wall time here covers the full request path
(fresh TLS connection + the one member-list update).

Parametrized over both authorization backends: the enclave-ACL numbers
are the paper's, the IBBE cells show what the same request path costs
once revocation means a group re-key (the head-to-head sweep lives in
``bench_revocation.py``).
"""

import pytest

from repro.core.enclave_app import SeGShareOptions

BACKENDS = ("enclave_acl", "ibbe")


@pytest.fixture(params=BACKENDS)
def deployment(make_deployment, request):
    return make_deployment(SeGShareOptions(authz_backend=request.param))


def test_membership_add(benchmark, deployment):
    identity = deployment.user_identity("owner")
    counter = iter(range(100_000))

    def add():
        i = next(counter)
        deployment.connect(identity).add_user(f"user{i}", f"group{i}")

    benchmark(add)


def test_membership_revoke(benchmark, deployment):
    identity = deployment.user_identity("owner")
    owner = deployment.connect(identity)
    ids = iter(range(100_000))
    for i in range(512):
        owner.add_user(f"user{i}", f"group{i}")

    def revoke():
        i = next(ids)
        deployment.connect(identity).remove_user(f"user{i}", f"group{i}")

    benchmark(revoke)


def test_membership_churn_in_large_group(benchmark, deployment):
    """Add+revoke one member of a 256-strong group: flat for the ACL
    backend, an O(|group|) re-key per cycle for IBBE."""
    identity = deployment.user_identity("owner")
    owner = deployment.connect(identity)
    for i in range(256):
        owner.add_user(f"member{i}", "bigteam")
    counter = iter(range(100_000))

    def cycle():
        i = next(counter)
        client = deployment.connect(identity)
        client.add_user(f"victim{i}", "bigteam")
        client.remove_user(f"victim{i}", "bigteam")

    benchmark(cycle)


def test_membership_add_with_busy_share(benchmark, make_deployment):
    """The independence claim: same operation, share full of files."""
    deployment = make_deployment()
    seeder = deployment.new_user("owner")
    for i in range(40):
        seeder.upload(f"/seed{i}", bytes(10_000))
    identity = deployment.user_identity("owner")
    counter = iter(range(100_000))

    def add():
        i = next(counter)
        deployment.connect(identity).add_user(f"user{i}", f"group{i}")

    benchmark(add)

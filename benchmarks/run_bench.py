#!/usr/bin/env python
"""Single-entry benchmark pipeline: uncached baseline vs metadata cache.

Runs reduced-but-fixed versions of the paper's workloads (Fig. 3 reads,
Fig. 4 metadata mutations, Fig. 5 rollback ablation) plus the batched
multi-file mutation workloads against two server configurations:

* ``baseline`` — metadata cache off, rollback-guard batching off: every
  read pays PFS decrypt + Merkle + guard verification (with a ROTE
  quorum read), every journaled write pays one anchor write (ROTE quorum
  increment) per touched leaf.
* ``cached`` — the enclave-resident metadata cache on, guard batching
  on: hot metadata is served from EPC-charged enclave memory; a batch
  flushes each dirty guard node and the anchor once at commit.

Latencies are **virtual-clock seconds** from the calibrated Azure cost
model (the same clock the figure reproductions use), so the comparison
measures exactly the crypto/storage/counter work the cache removes —
not Python interpreter noise.  Results land in ``BENCH_pipeline.json``;
docs/PERF.md explains how to read them.

Exit status is non-zero if the cached configuration is *slower* than
the baseline on the Fig. 3 repeated-read workload — the regression gate
CI runs on every push (``--quick``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.workloads import KB, unique_bytes  # noqa: E402
from repro.core.enclave_app import SeGShareOptions  # noqa: E402
from repro.core.requests import Op, Request, Status  # noqa: E402
from repro.core.server import SeGShareServer  # noqa: E402
from repro.netsim import azure_wan_env  # noqa: E402
from repro.pki import CertificateAuthority  # noqa: E402

#: One CA for every server: RSA keygen dominates setup and is unmeasured.
_CA = CertificateAuthority(key_bits=1024)

CACHE_BYTES = 512 * 1024

CONFIGS = {
    "baseline": dict(metadata_cache_bytes=None, guard_batching=False),
    "cached": dict(metadata_cache_bytes=CACHE_BYTES, guard_batching=True),
}


def build_server(**overrides) -> SeGShareServer:
    options = SeGShareOptions(
        rollback="whole_fs",
        counter_kind="rote",
        rollback_buckets=16,
        journal=True,
        **overrides,
    )
    return SeGShareServer(azure_wan_env(), _CA.public_key, options=options)


def virtual_time(server: SeGShareServer, fn) -> float:
    clock = server.env.clock
    start = clock.now()
    fn()
    return clock.now() - start


def get_file(server: SeGShareServer, user: str, path: str) -> bytes:
    response = server.enclave.handler.get(user, path)
    return b"".join(response.chunks)  # consuming the stream charges costs


def ok(response) -> None:
    assert response.status is Status.OK, response


# -- workloads ----------------------------------------------------------------------


def bench_fig3_read(repeats: int, file_kb: int = 4) -> dict:
    """Fig. 3's GET side, repeated-read shape: the same small file is
    downloaded ``repeats`` times.  Metadata work (ACL + member list +
    guard verification + ROTE read) dominates content crypto at this
    size, which is precisely what the cache amortizes."""
    out: dict = {"repeats": repeats, "file_kb": file_kb}
    content = unique_bytes("run-bench/fig3", 0, file_kb * KB)
    for name, overrides in CONFIGS.items():
        server = build_server(**overrides)
        handler = server.enclave.handler
        ok(handler.handle("alice", Request(op=Op.PUT_DIR, args=("/data/",))))
        ok(handler.put_file("alice", "/data/doc", content))
        assert get_file(server, "alice", "/data/doc") == content  # warm once
        elapsed = virtual_time(
            server,
            lambda: [get_file(server, "alice", "/data/doc") for _ in range(repeats)],
        )
        out[name] = {
            "total_s": elapsed,
            "latency_s": elapsed / repeats,
            "ops_per_sec": repeats / elapsed if elapsed else float("inf"),
        }
        if name == "cached":
            stats = server.stats()
            out[name]["cache"] = stats["cache"]
            out[name]["epc_cache_bytes"] = stats["epc"]["cache_bytes"]
    out["speedup"] = out["baseline"]["latency_s"] / out["cached"]["latency_s"]
    return out


def bench_fig4_metadata(count: int) -> dict:
    """Fig. 4's shape: a stream of small metadata mutations (mkdir, put,
    set_permission), each its own journaled batch.  Guard batching turns
    per-leaf anchor writes (ROTE quorum increments) into one per op."""
    out: dict = {"count": count}
    for name, overrides in CONFIGS.items():
        server = build_server(**overrides)
        handler = server.enclave.handler
        ok(handler.handle("alice", Request(op=Op.ADD_USER, args=("bob", "eng"))))

        def workload():
            for i in range(count):
                ok(handler.handle("alice", Request(op=Op.PUT_DIR, args=(f"/d{i}/",))))
                ok(handler.put_file("alice", f"/d{i}/f", unique_bytes("fig4", i, 512)))
                ok(
                    handler.handle(
                        "alice",
                        Request(op=Op.SET_PERM, args=(f"/d{i}/f", "eng", "r")),
                    )
                )

        elapsed = virtual_time(server, workload)
        out[name] = {
            "total_s": elapsed,
            "latency_s": elapsed / (3 * count),
            "ops_per_sec": (3 * count) / elapsed if elapsed else float("inf"),
        }
        if name == "cached":
            stats = server.stats()
            out[name]["cache"] = stats["cache"]
            out[name]["rollback_guard"] = stats["rollback_guard"]
    out["speedup"] = out["baseline"]["latency_s"] / out["cached"]["latency_s"]
    return out


def bench_mutation_batch(members: int) -> dict:
    """The multi-file mutation batch: ``delete_group`` over a group with
    ``members`` users — one journaled batch touching the group list and
    every member list, the paper's known-slow revocation path."""
    out: dict = {"members": members}
    for name, overrides in CONFIGS.items():
        server = build_server(**overrides)
        handler = server.enclave.handler
        for i in range(members):
            ok(handler.handle("alice", Request(op=Op.ADD_USER, args=(f"u{i}", "eng"))))
        elapsed = virtual_time(
            server,
            lambda: ok(
                handler.handle("alice", Request(op=Op.DELETE_GROUP, args=("eng",)))
            ),
        )
        out[name] = {"total_s": elapsed, "latency_s": elapsed}
        if name == "cached":
            stats = server.stats()
            out[name]["cache"] = stats["cache"]
            out[name]["group_guard"] = stats["group_guard"]
    out["speedup"] = out["baseline"]["latency_s"] / out["cached"]["latency_s"]
    return out


def bench_fig5_rollback(repeats: int) -> dict:
    """Fig. 5's ablation, extended with the cache column: repeated GET
    latency with rollback protection off, on (uncached), and on with the
    metadata cache — how much of the integrity tax the cache refunds."""
    content = unique_bytes("run-bench/fig5", 0, 4 * KB)
    variants = {
        "no_rollback": dict(rollback=None, counter_kind="none", journal=False),
        "whole_fs": dict(metadata_cache_bytes=None, guard_batching=False),
        "whole_fs_cached": dict(
            metadata_cache_bytes=CACHE_BYTES, guard_batching=True
        ),
    }
    out: dict = {"repeats": repeats}
    for name, overrides in variants.items():
        if name == "no_rollback":
            options = SeGShareOptions(journal=False)
            server = SeGShareServer(azure_wan_env(), _CA.public_key, options=options)
        else:
            server = build_server(**overrides)
        handler = server.enclave.handler
        ok(handler.put_file("alice", "/doc", content))
        assert get_file(server, "alice", "/doc") == content
        elapsed = virtual_time(
            server,
            lambda: [get_file(server, "alice", "/doc") for _ in range(repeats)],
        )
        out[name] = {"latency_s": elapsed / repeats}
    out["cached_overhead_vs_unprotected"] = (
        out["whole_fs_cached"]["latency_s"] / out["no_rollback"]["latency_s"]
    )
    out["uncached_overhead_vs_unprotected"] = (
        out["whole_fs"]["latency_s"] / out["no_rollback"]["latency_s"]
    )
    return out


def bench_cache_size_ablation(repeats: int) -> list[dict]:
    """Hit rate and latency as the cache shrinks below the working set."""
    rows = []
    paths = [f"/w/f{i}" for i in range(12)]
    for capacity in (8 * KB, 64 * KB, 512 * KB):
        server = build_server(
            metadata_cache_bytes=capacity, guard_batching=True
        )
        handler = server.enclave.handler
        ok(handler.handle("alice", Request(op=Op.PUT_DIR, args=("/w/",))))
        for i, path in enumerate(paths):
            ok(handler.put_file("alice", path, unique_bytes("ablate", i, 2 * KB)))
        elapsed = virtual_time(
            server,
            lambda: [
                get_file(server, "alice", paths[i % len(paths)])
                for i in range(repeats)
            ],
        )
        stats = server.stats()
        rows.append(
            {
                "capacity_bytes": capacity,
                "latency_s": elapsed / repeats,
                "hit_rate": stats["cache"]["hit_rate"],
                "evictions": stats["cache"]["evictions"],
                "epc_cache_bytes": stats["epc"]["cache_bytes"],
            }
        )
    return rows


# -- driver -------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.quick:
        fig3_repeats, fig4_count, members, fig5_repeats, ablation_repeats = (
            30, 10, 15, 20, 48,
        )
    else:
        fig3_repeats, fig4_count, members, fig5_repeats, ablation_repeats = (
            200, 60, 80, 100, 240,
        )

    print("fig3 repeated-read ...", flush=True)
    fig3 = bench_fig3_read(fig3_repeats)
    print(f"  baseline {fig3['baseline']['latency_s'] * 1e3:.3f} ms/op   "
          f"cached {fig3['cached']['latency_s'] * 1e3:.3f} ms/op   "
          f"speedup {fig3['speedup']:.2f}x   "
          f"hit rate {fig3['cached']['cache']['hit_rate']:.2f}")

    print("fig4 metadata mutations ...", flush=True)
    fig4 = bench_fig4_metadata(fig4_count)
    print(f"  baseline {fig4['baseline']['latency_s'] * 1e3:.3f} ms/op   "
          f"cached {fig4['cached']['latency_s'] * 1e3:.3f} ms/op   "
          f"speedup {fig4['speedup']:.2f}x")

    print("delete_group mutation batch ...", flush=True)
    batch = bench_mutation_batch(members)
    print(f"  baseline {batch['baseline']['latency_s'] * 1e3:.2f} ms   "
          f"cached {batch['cached']['latency_s'] * 1e3:.2f} ms   "
          f"speedup {batch['speedup']:.2f}x")

    print("fig5 rollback ablation ...", flush=True)
    fig5 = bench_fig5_rollback(fig5_repeats)
    print(f"  unprotected {fig5['no_rollback']['latency_s'] * 1e3:.3f} ms   "
          f"whole_fs {fig5['whole_fs']['latency_s'] * 1e3:.3f} ms   "
          f"whole_fs+cache {fig5['whole_fs_cached']['latency_s'] * 1e3:.3f} ms")

    print("cache size ablation ...", flush=True)
    ablation = bench_cache_size_ablation(ablation_repeats)
    for row in ablation:
        print(f"  {row['capacity_bytes'] // KB:>4} KB: hit rate {row['hit_rate']:.2f}  "
              f"{row['latency_s'] * 1e3:.3f} ms/op")

    criteria = {
        "fig3_read_speedup": round(fig3["speedup"], 2),
        "fig3_read_target_3x": fig3["speedup"] >= 3.0,
        "mutation_batch_speedup": round(batch["speedup"], 2),
        "mutation_batch_target_2x": batch["speedup"] >= 2.0,
        "cached_not_slower": fig3["speedup"] >= 1.0 and batch["speedup"] >= 1.0,
    }
    report = {
        "meta": {
            "quick": args.quick,
            "configs": {k: dict(v) for k, v in CONFIGS.items()},
            "clock": "virtual (calibrated Azure cost model)",
        },
        "fig3_read": fig3,
        "fig4_metadata": fig4,
        "mutation_batch": batch,
        "fig5_rollback": fig5,
        "cache_size_ablation": ablation,
        "criteria": criteria,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(f"criteria: {json.dumps(criteria)}")

    if not criteria["cached_not_slower"]:
        print("FAIL: cached configuration is slower than the baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E6 / Table III — the objective classification.

A rendering bench plus the live assertion that the implementation's
column is what the paper claims.
"""

from repro.core.features import Support, format_table3, segshare_row


def test_table3_render(benchmark):
    rendered = benchmark(format_table3)
    assert "SeGShare" in rendered


def test_segshare_column_is_full(benchmark):
    row = benchmark(segshare_row)
    assert all(level is Support.FULL for level in row.support.values())

"""Benchmark fixtures: shared key material and deployment helpers.

The pytest-benchmark files measure REAL wall time of the simulated
operations (the virtual-clock latencies that reproduce the paper's
figures are printed by ``python -m repro.bench <experiment>``); each
bench also attaches the relevant virtual-time result via ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.enclave_app import SeGShareOptions
from repro.core.server import Deployment, deploy
from repro.crypto import rsa
from repro.netsim import azure_wan_env


@pytest.fixture(scope="session")
def user_key() -> rsa.RsaPrivateKey:
    return rsa.generate_keypair(1024)


@pytest.fixture()
def make_deployment(user_key):
    def factory(options: SeGShareOptions | None = None) -> Deployment:
        deployment = deploy(env=azure_wan_env(), options=options)
        original = deployment.new_user

        def new_user(user_id: str, key=None, key_bits: int = 1024):
            return original(user_id, key=key or user_key, key_bits=key_bits)

        deployment.new_user = new_user  # type: ignore[method-assign]
        return deployment

    return factory

#!/usr/bin/env python
"""Multi-client concurrency benchmark: throughput vs switchless workers.

Drives N closed-loop clients through the server's switchless worker pool
on the parallel virtual clock (docs/PERF.md §5) over two path sets:

* ``disjoint_read``  — every client repeatedly GETs its own file.  Path
  locks never conflict, so throughput should scale with the worker pool
  until switchless overhead flattens it.
* ``contended_write`` — every client repeatedly PUTs its own file inside
  one shared directory.  Uploads to distinct files share-lock the parent
  directory (they only need it to exist), so the pipeline overlaps them
  — and the group-commit coordinator coalesces the concurrently-prepared
  transactions into one commit epoch: one journal marker, one batched
  guard flush, one anchor write, one counter increment for the whole
  cohort (docs/PERF.md §group commit).  The curve should now *rise*
  with workers instead of sitting on the old serial commit ceiling.

Servers run over an 8-way :class:`repro.store.ShardedStore` router, so
every cell also reports the storage-engine transaction counters (puts
per commit, flush group sizes) and the per-shard op distribution —
demonstrating the multi-backend deployment under concurrent load.

Latencies are virtual-clock seconds from the calibrated Azure cost
model; results land in ``BENCH_concurrency.json`` with a per-account
wait breakdown (lock-wait, worker-wait, commit-wait, ...) per cell.

The cluster cells run with the coherence protocol's caches **on** (the
``cluster_options`` default since the cross-replica invalidation log):
``cluster_cached_read`` drives the same warm read mix through a cached
and an uncached 3-replica cluster and reports every replica's coherence
counters (applied epoch, lag, invalidations applied, full discards,
cache hits/misses) alongside the board's host-side view.

Exit status is non-zero if disjoint-path read throughput at 4 workers
fails to reach 2x the 1-worker figure, if contended-write throughput
at 8 workers fails to reach 1.3x the 1-worker figure, or if the cached
3-replica cluster fails to reach 2x the uncached cluster on warm reads
— the scaling gates CI runs on every push (``--quick``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.concurrency import ConcurrentDriver, parallel_env  # noqa: E402
from repro.bench.workloads import KB, unique_bytes  # noqa: E402
from repro.cluster import ClusterDriver, build_cluster  # noqa: E402
from repro.core.enclave_app import SeGShareOptions  # noqa: E402
from repro.core.requests import Op, Request, Status  # noqa: E402
from repro.core.server import SeGShareServer  # noqa: E402
from repro.pki import CertificateAuthority  # noqa: E402
from repro.storage import InMemoryStore, StoreSet  # noqa: E402

#: One CA for every server: RSA keygen dominates setup and is unmeasured.
_CA = CertificateAuthority(key_bits=1024)

CLIENTS = 8
WORKER_SWEEP = (1, 2, 4, 8)
REPLICA_SWEEP = (1, 3)
FILE_KB = 4
SHARDS = 8


def build_server(workers: int) -> SeGShareServer:
    options = SeGShareOptions(
        rollback="whole_fs",
        counter_kind="rote",
        rollback_buckets=16,
        journal=True,
        metadata_cache_bytes=512 * KB,
        guard_batching=True,
        switchless_workers=workers,
    )
    stores = StoreSet.sharded([InMemoryStore() for _ in range(SHARDS)])
    return SeGShareServer(parallel_env(), _CA.public_key, stores=stores, options=options)


def cell_counters(server: SeGShareServer) -> dict:
    """Switchless, group-commit, lock, engine, and shard counters."""
    stats = server.stats()
    sw = server.switchless.stats
    out = {
        "switchless": {
            "fast": sw.fast,
            "fallback": sw.fallback,
            "spins": sw.spins,
            "parks": sw.parks,
            "wakes": sw.wakes,
            "queued": sw.queued,
            "worker_wait_s": round(sw.worker_wait_s, 6),
        },
        "locks": stats["locks"],
        "engine": stats["engine"],
        "shards": stats["shards"],
    }
    if "group_commit" in stats:
        out["group_commit"] = stats["group_commit"]
    return out


def replica_counters(deployment) -> dict:
    """Per-replica coherence + cache counters — in every cluster cell."""
    out = {}
    for name in deployment.cluster.membership.ring.members:
        stats = deployment.server(name).stats()
        entry = {}
        if "coherence" in stats:
            entry["coherence"] = stats["coherence"]
        if "cache" in stats:
            entry["cache"] = {
                "hits": stats["cache"]["hits"],
                "misses": stats["cache"]["misses"],
                "hit_rate": stats["cache"]["hit_rate"],
            }
        out[name] = entry
    return out


def ok(response) -> None:
    assert response.status is Status.OK, response


def get_file(server: SeGShareServer, user: str, path: str) -> None:
    response = server.enclave.handler.get(user, path)
    assert b"".join(response.chunks)  # consuming the stream charges costs


# -- workloads ----------------------------------------------------------------------


def run_disjoint_read(workers: int, ops_per_client: int) -> dict:
    """Each client GETs its own file: no lock conflicts, pure pool scaling."""
    server = build_server(workers)
    handler = server.enclave.handler
    for c in range(CLIENTS):
        ok(handler.handle(f"u{c}", Request(op=Op.PUT_DIR, args=(f"/c{c}/",))))
        ok(
            handler.put_file(
                f"u{c}", f"/c{c}/doc", unique_bytes("conc/read", c, FILE_KB * KB)
            )
        )
        get_file(server, f"u{c}", f"/c{c}/doc")  # warm the metadata cache
    driver = ConcurrentDriver(server)
    clients = [
        [
            (lambda c=c: get_file(server, f"u{c}", f"/c{c}/doc"))
            for _ in range(ops_per_client)
        ]
        for c in range(CLIENTS)
    ]
    result = driver.run(clients)
    out = result.summary()
    out.update(cell_counters(server))
    return out


def run_contended_write(workers: int, ops_per_client: int) -> dict:
    """Each client PUTs under one shared directory: the uploads overlap
    (parent share-locked, distinct file paths) and their prepared
    transactions coalesce into shared commit epochs, amortizing the
    journal marker, guard flush, anchor write, and counter increment."""
    server = build_server(workers)
    handler = server.enclave.handler
    ok(handler.handle("u0", Request(op=Op.PUT_DIR, args=("/shared/",))))
    for c in range(CLIENTS):
        ok(
            handler.put_file(
                "u0", f"/shared/f{c}", unique_bytes("conc/write", c, 1 * KB)
            )
        )
    driver = ConcurrentDriver(server)
    clients = [
        [
            (
                lambda c=c, i=i: ok(
                    handler.put_file(
                        "u0",
                        f"/shared/f{c}",
                        unique_bytes("conc/write", c * 1000 + i + 1, 1 * KB),
                    )
                )
            )
            for i in range(ops_per_client)
        ]
        for c in range(CLIENTS)
    ]
    result = driver.run(clients)
    out = result.summary()
    out.update(cell_counters(server))
    return out


def run_cluster_disjoint_read(replicas: int, ops_per_client: int) -> dict:
    """Each client GETs its own top-level directory's file through the
    cluster front door.  Disjoint top-level paths mean disjoint affinity
    keys, so with 3 replicas the rendezvous placement spreads the clients
    over 3 independent enclaves (worker pools, journals) against the one
    shared repository — throughput should rise accordingly versus the
    single-replica cluster."""
    deployment = build_cluster(
        replicas=replicas, parallel=True, ca=_CA, qe_key_bits=512
    )
    cluster = deployment.cluster

    def cluster_get(user: str, path: str, arrival: float) -> None:
        response = cluster.handle(user, Request(op=Op.GET, args=(path,)), arrival=arrival)
        assert b"".join(response.chunks)  # consuming the stream charges costs

    for c in range(CLIENTS):
        ok(cluster.handle(f"u{c}", Request(op=Op.PUT_DIR, args=(f"/c{c}/",))))
        ok(
            cluster.put_file(
                f"u{c}", f"/c{c}/doc", unique_bytes("conc/cluster", c, FILE_KB * KB)
            )
        )
    driver = ClusterDriver(cluster)
    clients = [
        [
            (lambda arrival, c=c: cluster_get(f"u{c}", f"/c{c}/doc", arrival))
            for _ in range(ops_per_client)
        ]
        for c in range(CLIENTS)
    ]
    result = driver.run(clients)
    out = result.summary()
    out["cluster"] = cluster.stats()
    out["replicas"] = replica_counters(deployment)
    return out


def run_cluster_cached_read(
    replicas: int, ops_per_client: int, cached: bool
) -> dict:
    """The disjoint read mix, warm, through a cached vs uncached cluster.

    One warm GET per client first: with ``cached`` the guard nodes and
    metadata land in each serving replica's cache and every measured
    read epoch-checks the coherence board (one untrusted int compare)
    then serves decrypted metadata from enclave memory; uncached, every
    read re-fetches and re-verifies against the shared store — the
    posture the whole cluster was stuck in before the invalidation log.
    """
    deployment = build_cluster(
        replicas=replicas, parallel=True, ca=_CA, qe_key_bits=512, cached=cached
    )
    cluster = deployment.cluster

    def cluster_get(user: str, path: str, arrival: float | None) -> None:
        response = cluster.handle(user, Request(op=Op.GET, args=(path,)), arrival=arrival)
        assert b"".join(response.chunks)  # consuming the stream charges costs

    for c in range(CLIENTS):
        ok(cluster.handle(f"u{c}", Request(op=Op.PUT_DIR, args=(f"/c{c}/",))))
        ok(
            cluster.put_file(
                f"u{c}", f"/c{c}/doc", unique_bytes("conc/cached", c, FILE_KB * KB)
            )
        )
        cluster_get(f"u{c}", f"/c{c}/doc", None)  # warm pass
    driver = ClusterDriver(cluster)
    clients = [
        [
            (lambda arrival, c=c: cluster_get(f"u{c}", f"/c{c}/doc", arrival))
            for _ in range(ops_per_client)
        ]
        for c in range(CLIENTS)
    ]
    result = driver.run(clients)
    out = result.summary()
    out["cluster"] = cluster.stats()
    out["replicas"] = replica_counters(deployment)
    return out


# -- driver -------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_concurrency.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    ops_per_client = 6 if args.quick else 25

    workloads = {
        "disjoint_read": run_disjoint_read,
        "contended_write": run_contended_write,
    }
    results: dict = {}
    for name, runner in workloads.items():
        print(f"{name} ...", flush=True)
        cells = {}
        for workers in WORKER_SWEEP:
            cell = runner(workers, ops_per_client)
            cells[str(workers)] = cell
            waits = cell["wait_breakdown_s"]
            dominant = max(waits, key=waits.get) if any(waits.values()) else "-"
            print(
                f"  {workers} worker(s): {cell['throughput_ops_per_s']:>9.2f} ops/s   "
                f"mean {cell['mean_latency_s'] * 1e3:7.3f} ms   "
                f"dominant wait: {dominant}"
            )
        base = cells["1"]["throughput_ops_per_s"]
        scaling = {
            str(w): round(cells[str(w)]["throughput_ops_per_s"] / base, 3)
            for w in WORKER_SWEEP
        }
        print(f"  scaling vs 1 worker: {scaling}")
        results[name] = {"by_workers": cells, "scaling_vs_1_worker": scaling}

    print("cluster_disjoint_read ...", flush=True)
    cluster_cells = {}
    for replicas in REPLICA_SWEEP:
        cell = run_cluster_disjoint_read(replicas, ops_per_client)
        cluster_cells[str(replicas)] = cell
        print(
            f"  {replicas} replica(s): {cell['throughput_ops_per_s']:>9.2f} ops/s   "
            f"mean {cell['mean_latency_s'] * 1e3:7.3f} ms   "
            f"routing: {cell['cluster']['routed_by_member']}"
        )
    cluster_base = cluster_cells["1"]["throughput_ops_per_s"]
    cluster_scaling = {
        str(r): round(cluster_cells[str(r)]["throughput_ops_per_s"] / cluster_base, 3)
        for r in REPLICA_SWEEP
    }
    print(f"  scaling vs 1 replica: {cluster_scaling}")
    results["cluster_disjoint_read"] = {
        "by_replicas": cluster_cells,
        "scaling_vs_1_replica": cluster_scaling,
    }

    print("cluster_cached_read ...", flush=True)
    cached_replicas = max(REPLICA_SWEEP)
    cached_cells = {}
    for mode, cached in (("uncached", False), ("cached", True)):
        cell = run_cluster_cached_read(cached_replicas, ops_per_client, cached)
        cached_cells[mode] = cell
        coherence = {
            name: entry.get("coherence", {})
            for name, entry in cell["replicas"].items()
        }
        lag = {n: c.get("epoch_lag_max", 0) for n, c in coherence.items()}
        discards = {n: c.get("full_discards", 0) for n, c in coherence.items()}
        hits = {n: c.get("cache_hits", 0) for n, c in coherence.items()}
        print(
            f"  {mode:>8}: {cell['throughput_ops_per_s']:>9.2f} ops/s   "
            f"mean {cell['mean_latency_s'] * 1e3:7.3f} ms   "
            f"hits {hits}   lag_max {lag}   full_discards {discards}"
        )
    cached_speedup = round(
        cached_cells["cached"]["throughput_ops_per_s"]
        / cached_cells["uncached"]["throughput_ops_per_s"],
        3,
    )
    print(f"  cached vs uncached at {cached_replicas} replicas: {cached_speedup}x")
    results["cluster_cached_read"] = {
        "replicas": cached_replicas,
        "by_mode": cached_cells,
        "cached_vs_uncached": cached_speedup,
    }

    disjoint_4w = results["disjoint_read"]["scaling_vs_1_worker"]["4"]
    contended_8w = results["contended_write"]["scaling_vs_1_worker"]["8"]
    contended_8w_waits = results["contended_write"]["by_workers"]["8"][
        "wait_breakdown_s"
    ]
    cluster_3r = results["cluster_disjoint_read"]["scaling_vs_1_replica"]["3"]
    criteria = {
        "disjoint_read_scaling_4w": disjoint_4w,
        "disjoint_read_target_2x": disjoint_4w >= 2.0,
        # Informational: disjoint affinities should spread over replicas.
        "cluster_disjoint_read_scaling_3r": cluster_3r,
        # Group commit broke the serial commit ceiling: contended writes
        # must now scale with workers instead of sitting near-flat
        # (docs/PERF.md §group commit explains the amortization).
        "contended_write_scaling_8w": contended_8w,
        "contended_write_target_1_3x": contended_8w >= 1.3,
        # Time spent waiting for a shared epoch to close must show up
        # under its own account, not be mislabeled as lock-wait.
        "commit_wait_attributed": contended_8w_waits.get("commit-wait", 0.0) > 0.0,
        # The coherence protocol must earn its keep: warm reads through
        # the cached 3-replica cluster at least double the uncached
        # (always-reverify) cluster's throughput.
        "cluster_cached_read_speedup_3r": cached_speedup,
        "cluster_cached_read_target_2x": cached_speedup >= 2.0,
    }
    report = {
        "meta": {
            "quick": args.quick,
            "clients": CLIENTS,
            "ops_per_client": ops_per_client,
            "worker_sweep": list(WORKER_SWEEP),
            "replica_sweep": list(REPLICA_SWEEP),
            "shards": SHARDS,
            "clock": "parallel virtual (calibrated Azure cost model)",
        },
        "workloads": results,
        "criteria": criteria,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(f"criteria: {json.dumps(criteria)}")

    failed = False
    if not criteria["disjoint_read_target_2x"]:
        print(
            "FAIL: disjoint-path read throughput at 4 workers is below 2x "
            "the 1-worker figure",
            file=sys.stderr,
        )
        failed = True
    if not criteria["contended_write_target_1_3x"]:
        print(
            "FAIL: contended-write throughput at 8 workers is below 1.3x "
            "the 1-worker figure (group commit is not coalescing)",
            file=sys.stderr,
        )
        failed = True
    if not criteria["cluster_cached_read_target_2x"]:
        print(
            "FAIL: warm cached-cluster reads are below 2x the uncached "
            "cluster (the coherence protocol is not winning the caches back)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""A3b — primitive throughput: PAE backends, multiset hashes, RSA, PFS."""

import pytest

from repro.bench.workloads import pseudo_bytes
from repro.crypto import rsa
from repro.crypto.mset_hash import MSetXorHash
from repro.crypto.pae import AesGcmPae, HmacStreamPae
from repro.sgx.protected_fs import ProtectedFs
from repro.storage.backends import InMemoryStore

KEY = bytes(16)
MB1 = pseudo_bytes("crypto", 1_000_000)
SMALL = pseudo_bytes("crypto-small", 16_384)


class TestPae:
    def test_hmac_stream_encrypt_1mb(self, benchmark):
        pae = HmacStreamPae()
        blob = benchmark(lambda: pae.encrypt(KEY, MB1))
        assert len(blob) == len(MB1) + pae.overhead

    def test_hmac_stream_decrypt_1mb(self, benchmark):
        pae = HmacStreamPae()
        blob = pae.encrypt(KEY, MB1)
        assert benchmark(lambda: pae.decrypt(KEY, blob)) == MB1

    def test_aes_gcm_encrypt_16kb(self, benchmark):
        pae = AesGcmPae()
        benchmark(lambda: pae.encrypt(KEY, SMALL))

    def test_aes_gcm_decrypt_16kb(self, benchmark):
        pae = AesGcmPae()
        blob = pae.encrypt(KEY, SMALL)
        assert benchmark(lambda: pae.decrypt(KEY, blob)) == SMALL


class TestMsetHash:
    def test_incremental_update(self, benchmark):
        h = MSetXorHash(b"key")
        for i in range(1000):
            h.add(b"element-%d" % i)

        def update():
            h.update(b"element-1", b"element-x")
            h.update(b"element-x", b"element-1")

        benchmark(update)


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return rsa.generate_keypair(1024)

    def test_sign(self, benchmark, key):
        benchmark(lambda: rsa.sign(key, b"message"))

    def test_verify(self, benchmark, key):
        signature = rsa.sign(key, b"message")
        assert benchmark(lambda: rsa.verify(key.public_key, b"message", signature))


class TestProtectedFs:
    def test_write_1mb(self, benchmark):
        pfs = ProtectedFs(InMemoryStore(), master_key=KEY)
        counter = iter(range(100_000))
        benchmark(lambda: pfs.write_file(f"/f{next(counter)}", MB1))

    def test_read_1mb(self, benchmark):
        pfs = ProtectedFs(InMemoryStore(), master_key=KEY)
        pfs.write_file("/f", MB1)
        assert benchmark(lambda: pfs.read_file("/f")) == MB1

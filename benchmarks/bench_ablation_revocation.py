"""A1 — revocation cost: SeGShare vs hybrid-encryption baselines.

SeGShare's membership revocation updates ONE member list regardless of
how many files the group can access; eager HE re-encrypts every file.
The in-enclave cryptographic backend (``authz_backend="ibbe"``) sits
between the two: an envelope re-key per revocation now, re-encryption
deferred to reconcile — ``bench_revocation.py`` sweeps that trade over
group sizes.
"""

import pytest

from repro.baselines import HybridEncryptionShare
from repro.bench.workloads import unique_bytes
from repro.core.enclave_app import SeGShareOptions

FILES = 25
FILE_SIZE = 50_000


@pytest.mark.parametrize("backend", ["enclave_acl", "ibbe"])
def test_segshare_revocation(benchmark, make_deployment, backend):
    deployment = make_deployment(SeGShareOptions(authz_backend=backend))
    admin = deployment.new_user("admin")
    for i in range(FILES):
        admin.upload(f"/t{i}.dat", unique_bytes("rev", i, FILE_SIZE))
        admin.set_permission(f"/t{i}.dat", "team", "rw") if i == -1 else None
    counter = iter(range(100_000))

    def cycle():
        user = f"victim{next(counter)}"
        admin.add_user(user, "team")
        admin.remove_user(user, "team")

    benchmark(cycle)


@pytest.mark.parametrize("lazy", [False, True], ids=["eager", "lazy"])
def test_hybrid_encryption_revocation(benchmark, lazy):
    share = HybridEncryptionShare(lazy_revocation=lazy)
    share.create_group("team", {"admin"})
    for i in range(FILES):
        share.upload("admin", f"/t{i}.dat", unique_bytes("rev", i, FILE_SIZE))
        share.grant_group(f"/t{i}.dat", "team")
    counter = iter(range(100_000))

    def cycle():
        user = f"victim{next(counter)}"
        share.add_group_member("team", user)
        share.remove_group_member("team", user)

    benchmark(cycle)

"""E4 / Fig. 5 — individual-file rollback protection overhead.

One 10 kB up/download with pre-existing files, rollback protection on
and off, binary-tree and flat layouts.  The full 2^x−1 sweep is
``python -m repro.bench fig5 --full``.
"""

import pytest

from repro.bench.workloads import binary_tree_paths, directories_of, flat_paths, unique_bytes
from repro.core.enclave_app import SeGShareOptions

FILE_SIZE = 10_000
PRELOADED = 255


def _populated(make_deployment, rollback, layout_fn):
    options = SeGShareOptions(rollback="individual" if rollback else "off")
    deployment = make_deployment(options)
    handler = deployment.server.enclave.handler
    paths = layout_fn(PRELOADED)
    for directory in directories_of(paths):
        handler.put_dir("seeder", directory)
    for i, path in enumerate(paths):
        handler.put_file("seeder", path, unique_bytes("bench5", i, FILE_SIZE))
    return deployment, deployment.new_user("u")


@pytest.mark.parametrize("rollback", [False, True], ids=["off", "on"])
@pytest.mark.parametrize("layout", [binary_tree_paths, flat_paths], ids=["tree", "flat"])
def test_upload_with_preloaded_files(benchmark, make_deployment, rollback, layout):
    deployment, client = _populated(make_deployment, rollback, layout)
    data = unique_bytes("bench5-probe", 0, FILE_SIZE)
    counter = iter(range(100_000))
    benchmark(lambda: client.upload(f"/probe{next(counter)}.dat", data))


@pytest.mark.parametrize("rollback", [False, True], ids=["off", "on"])
@pytest.mark.parametrize("layout", [binary_tree_paths, flat_paths], ids=["tree", "flat"])
def test_download_with_preloaded_files(benchmark, make_deployment, rollback, layout):
    deployment, client = _populated(make_deployment, rollback, layout)
    client.upload("/probe.dat", unique_bytes("bench5-probe", 0, FILE_SIZE))
    benchmark(lambda: client.download("/probe.dat"))

"""E1 / Fig. 3 — upload & download latency: SeGShare vs Apache vs nginx.

Wall time measures the real cost of the full pipeline (TLS record crypto,
enclave re-encryption, protected-FS chunking); ``extra_info`` carries the
virtual-clock latency that reproduces the paper's numbers.  Regenerate
the full figure with ``python -m repro.bench fig3 --full``.
"""

import pytest

from repro.baselines import APACHE_PROFILE, NGINX_PROFILE, PlainWebDavServer
from repro.bench.workloads import MB, pseudo_bytes
from repro.core.enclave_app import SeGShareOptions
from repro.netsim import azure_wan_env

SIZE = 4 * MB
DATA = pseudo_bytes("bench-fig3", SIZE)


@pytest.fixture()
def seg_client(make_deployment):
    deployment = make_deployment(SeGShareOptions(hide_paths=True))
    return deployment, deployment.new_user("u")


def test_segshare_upload(benchmark, seg_client):
    deployment, client = seg_client
    counter = iter(range(10_000))

    def upload():
        client.upload(f"/f{next(counter)}.dat", DATA)

    start = deployment.env.clock.now()
    benchmark(upload)
    benchmark.extra_info["virtual_seconds_first_op"] = deployment.env.clock.now() - start


def test_segshare_download(benchmark, seg_client):
    deployment, client = seg_client
    client.upload("/f.dat", DATA)
    result = benchmark(lambda: client.download("/f.dat"))
    assert result == DATA


@pytest.mark.parametrize(
    "profile", [APACHE_PROFILE, NGINX_PROFILE], ids=["apache", "nginx"]
)
def test_plain_webdav_upload(benchmark, profile):
    env = azure_wan_env()
    client = PlainWebDavServer(env, profile).connect()
    counter = iter(range(10_000))
    benchmark(lambda: client.put(f"/f{next(counter)}", DATA))


@pytest.mark.parametrize(
    "profile", [APACHE_PROFILE, NGINX_PROFILE], ids=["apache", "nginx"]
)
def test_plain_webdav_download(benchmark, profile):
    env = azure_wan_env()
    client = PlainWebDavServer(env, profile).connect()
    client.put("/f", DATA)
    assert benchmark(lambda: client.get("/f")) == DATA
